#!/usr/bin/env sh
# Kill/restart chaos harness for the durability layer (docs/robustness.md
# §11, docs/serving.md §9). Two legs, both against the real binaries:
#
#   serve  SIGKILL csq_serve mid-load (several kill delays, serial and
#          threaded), restart with --journal --recover, and verify from the
#          journal file itself: every journaled (admitted) request is
#          answered exactly once on restart, and every
#          response the client saw before the crash is re-delivered with
#          byte-identical content. A torn journal tail must be absorbed,
#          never fatal.
#   sweep  SIGKILL csq_cli sweep --checkpoint mid-sweep, resume, and cmp
#          the CSV against an uninterrupted golden run — byte-identical
#          output for an arbitrary interruption point.
#
# The assertions hold for *any* kill timing, so the harness is not flaky:
# an unlucky (too-early/too-late) kill degrades coverage, not correctness.
# Deterministic in-process crash drills live in tests/test_durable.cc
# (`ctest -L durable`); this script is the end-to-end SIGKILL version the
# CI durable stage runs under ASan (tools/check_warnings.sh,
# CSQ_SKIP_DURABLE=1 to skip).
#
# usage: tools/chaos_crash.sh [build-dir]   (default: ./build)
set -u

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
serve_bin="$build_dir/tools/csq_serve"
cli_bin="$build_dir/tools/csq_cli"

fail() {
  printf 'chaos_crash: FAIL %s\n' "$1" >&2
  exit 1
}
note() {
  printf 'chaos_crash: %s\n' "$1"
}

[ -x "$serve_bin" ] || fail "csq_serve not built at $serve_bin"
[ -x "$cli_bin" ] || fail "csq_cli not built at $cli_bin"
command -v python3 >/dev/null 2>&1 || fail "python3 required for the journal verifier"

tmp=$(mktemp -d) || fail "mktemp"
trap 'rm -rf "$tmp"' EXIT INT TERM

# --- journal verifier -------------------------------------------------------
# Decodes the CSQJ1 framing (stopping at the first torn frame, like replay())
# and checks the exactly-once + byte-identity contract against the pre-crash
# and post-recovery response captures.
cat > "$tmp/verify_journal.py" << 'PYEOF'
import binascii, json, sys

journal, pre_path, post_path = sys.argv[1], sys.argv[2], sys.argv[3]
data = open(journal, "rb").read()

pos, reqs, completed, order = 0, {}, set(), []
while pos < len(data):
    nl = data.find(b"\n", pos)
    if nl < 0:
        break  # torn tail
    parts = data[pos:nl].split(b" ")
    if len(parts) != 5 or parts[0] != b"CSQJ1":
        break
    kind, seq, length, crc = parts[1], int(parts[2]), int(parts[3]), parts[4]
    start, end = nl + 1, nl + 1 + length
    if end >= len(data) or data[end:end + 1] != b"\n":
        break
    payload = data[start:end]
    if format(binascii.crc32(payload) & 0xFFFFFFFF, "08x").encode() != crc:
        break
    if kind == b"req" and seq not in reqs:
        reqs[seq] = payload
        order.append(seq)
    elif kind == b"res" and seq in reqs:
        completed.add(seq)
    pos = end + 1

def lines(path):
    raw = open(path, "rb").read()
    parts = raw.split(b"\n")
    if raw and not raw.endswith(b"\n"):
        parts = parts[:-1]  # drop the line the kill tore mid-write
    return [p for p in parts if p]

def rid(line):
    try:
        return json.loads(line)["id"]
    except Exception:
        return None

pre, post = lines(pre_path), lines(post_path)

# Exactly-once: each journaled request answered once on recovery — no more,
# no less. (Completed frames re-emit before re-executed ones, so with a
# threaded pre-crash run the recovery order can differ from journal order.)
want_ids = [rid(reqs[s]) for s in order]
got_ids = [rid(l) for l in post]
assert len(got_ids) == len(set(got_ids)), "duplicate response id after recovery"
assert sorted(got_ids) == sorted(want_ids), (
    f"recovered ids {sorted(got_ids)!r} != journaled ids {sorted(want_ids)!r}")

# Byte-identity: anything delivered before the crash for an *admitted*
# request is re-delivered with the same bytes — a duplicate is only legal
# when it is indistinguishable. Responses for requests that were never
# admitted (shed with Overloaded under load, malformed lines) are exempt:
# they were never journaled, by design, and do not reappear after recovery.
post_by_id = {rid(l): l for l in post}
admitted = set(want_ids)
for line in pre:
    i = rid(line)
    if i not in admitted:
        continue
    assert i in post_by_id, f"pre-crash response {i!r} missing after recovery"
    assert post_by_id[i] == line, f"response bytes changed across crash for id {i!r}"

print(f"verified: {len(order)} journaled, {len(completed)} completed pre-crash, "
      f"{len(pre)} delivered pre-crash, {len(post)} answered on recovery")
PYEOF

# --- serve leg --------------------------------------------------------------
# requests.ndjson: a fixed load the producer drips into the server slowly
# enough (~20 ms/line) that the kill lands mid-stream, with requests
# journaled but not yet answered.
i=0
while [ "$i" -lt 30 ]; do
  if [ $((i % 5)) -eq 2 ]; then
    # A heavier request every few lines, so a kill can land while one is
    # in flight: journaled, unanswered — the re-execute path on recovery.
    printf '{"id":"s%d","op":"sweep","axis":"rho_s","from":0.1,"to":0.9,"points":512,"rho_l":0.4,"mean_s":1,"mean_l":1,"scv_l":1}\n' "$i"
  else
    printf '{"id":"c%d","op":"analyze","rho_s":0.5,"rho_l":0.4,"mean_s":1,"mean_l":1,"scv_l":1}\n' "$i"
  fi
  i=$((i + 1))
done > "$tmp/requests.ndjson"

drip() {
  while IFS= read -r line; do
    printf '%s\n' "$line" 2>/dev/null || exit 1  # server gone: stop producing
    sleep 0.02
  done < "$tmp/requests.ndjson"
}

serve_leg() {
  delay=$1
  workers=$2
  tag="d${delay}w${workers}"
  journal="$tmp/journal_$tag.ndjson"
  drip | "$serve_bin" --workers "$workers" --journal="$journal" --fsync-every 1 \
    > "$tmp/pre_$tag.ndjson" 2>/dev/null &
  pid=$!
  sleep "$delay"
  kill -KILL "$pid" 2>/dev/null
  wait "$pid" 2>/dev/null
  if [ ! -f "$journal" ]; then
    # Killed inside process startup: nothing admitted, nothing to verify.
    note "SKIP  serve($tag): killed before the journal existed"
    return 0
  fi
  "$serve_bin" --workers 0 --journal="$journal" --recover \
    < /dev/null > "$tmp/post_$tag.ndjson" 2>"$tmp/err_$tag" \
    || fail "serve($tag): recovery exited nonzero: $(cat "$tmp/err_$tag")"
  python3 "$tmp/verify_journal.py" "$journal" \
    "$tmp/pre_$tag.ndjson" "$tmp/post_$tag.ndjson" \
    || fail "serve($tag): recovery contract violated"
  note "PASS  serve kill+recover ($tag)"
}

# Vary the cut point (early/mid/late) and exercise the threaded path too.
serve_leg 0.05 0
serve_leg 0.20 0
serve_leg 0.40 0
serve_leg 0.20 2

# A second kill *during recovery* must still converge on the next restart.
journal="$tmp/journal_double.ndjson"
drip | "$serve_bin" --workers 0 --journal="$journal" --fsync-every 1 \
  > "$tmp/pre_double.ndjson" 2>/dev/null &
pid=$!
sleep 0.15
kill -KILL "$pid" 2>/dev/null
wait "$pid" 2>/dev/null
"$serve_bin" --workers 0 --journal="$journal" --recover \
  < /dev/null > /dev/null 2>&1 &
pid=$!
sleep 0.05
kill -KILL "$pid" 2>/dev/null
wait "$pid" 2>/dev/null
"$serve_bin" --workers 0 --journal="$journal" --recover \
  < /dev/null > "$tmp/post_double.ndjson" 2>/dev/null \
  || fail "serve(double): second recovery exited nonzero"
: > "$tmp/pre_empty.ndjson"  # pre-crash capture not comparable after two lives
python3 "$tmp/verify_journal.py" "$journal" \
  "$tmp/pre_empty.ndjson" "$tmp/post_double.ndjson" \
  || fail "serve(double): recovery contract violated after a second crash"
note "PASS  serve double-crash recovery converges"

# --- sweep leg --------------------------------------------------------------
sweep_flags="sweep --x rho_s --from 0.1 --to 1.2 --points 20 --rho-l 0.4 --csv"
"$cli_bin" $sweep_flags > "$tmp/golden.csv" 2>/dev/null \
  || fail "sweep: golden run failed"
"$cli_bin" $sweep_flags --checkpoint "$tmp/sweep.ckpt" --checkpoint-every 1 \
  > /dev/null 2>&1 &
pid=$!
sleep 0.10
kill -KILL "$pid" 2>/dev/null
wait "$pid" 2>/dev/null
"$cli_bin" $sweep_flags --checkpoint "$tmp/sweep.ckpt" \
  > "$tmp/resumed.csv" 2>/dev/null \
  || fail "sweep: resume run failed"
cmp -s "$tmp/golden.csv" "$tmp/resumed.csv" \
  || fail "sweep: resumed CSV differs from the uninterrupted golden run"
note "PASS  sweep kill+resume is byte-identical"

note "all chaos drills passed"
