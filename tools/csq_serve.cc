// csq_serve — long-lived NDJSON analysis server over stdin/stdout.
//
// Reads one JSON request per line from stdin (docs/serving.md has the
// schema), dispatches it onto the serve::Server (admission control, retry
// with backoff, degradation ladder, LRU memo-cache) and writes one JSON
// response per line to stdout, in completion order. Responses carry the
// request's "id" so clients can match them up.
//
// Lifecycle: runs until stdin EOF, SIGTERM/SIGINT, or --max-requests is
// reached, then drains — admission stops, in-flight work gets
// --drain-timeout-ms to finish before cancellation, every admitted request
// still receives a response — flushes --metrics/--trace files and exits 0.
// The signal handler only sets a flag; the poll loop notices it within
// ~50 ms, so a drain is always an orderly drain.
//
// Flags (all --key=value or --key value):
//   --workers N             worker threads (default 2; 0 = serial: each line
//                           is executed inline before the next is read)
//   --queue-depth N         pending-request shed threshold (default 64)
//   --max-cost X            in-flight cost shed threshold (default 1024)
//   --request-timeout-ms X  per-request budget (default 10000; 0 = none)
//   --drain-timeout-ms X    drain grace before cancellation (default 2000)
//   --shed-retry-after-ms X base retry-after hint on sheds (default 10)
//   --no-degrade            hard-error instead of the degradation ladder
//   --cache-capacity N      solver memo-cache entries (default 256)
//   --op-threads N          solver threads inside one request (default 1)
//   --retry-attempts N      max attempts per request (default 3)
//   --max-requests N        drain after admitting N requests (test hook)
//   --metrics[=file]        obs counter dump on exit (stdout without =file)
//   --trace=file            Chrome trace-event JSON on exit
//   --fault spec[,...]      arm fault sites (needs -DCSQ_FAULT_INJECTION)
//   --journal=file          write-ahead request journal: every admitted
//                           request is journaled before it enters the queue,
//                           every response before it is delivered
//   --recover               replay the --journal file before serving:
//                           completed requests re-emit their recorded
//                           response bytes, unfinished ones re-execute
//   --fsync-every N         journal appends per fsync batch (default 32)
//
// Exit codes follow the csq_cli taxonomy table (README.md): 0 after a clean
// drain, 2 on malformed flags, 10 when --recover finds mid-file journal
// corruption (a torn tail is normal and recovered from), 1 on internal
// startup failures.
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/faultpoint.h"
#include "core/status.h"
#include "durable/journal.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "serve/server.h"

namespace {

using namespace csq;

volatile std::sig_atomic_t g_stop = 0;

extern "C" void handle_stop(int) { g_stop = 1; }

extern "C" void handle_wake(int) {}  // SIGUSR1: interrupt poll/read, change nothing

// Install handlers WITHOUT SA_RESTART: a signal must interrupt the blocking
// poll/read with EINTR so the pump loop re-checks g_stop promptly.
// std::signal gives BSD (SA_RESTART) semantics on glibc, which would leave
// the EINTR paths dead and a drain waiting on the next stdin byte.
void install_signal_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = handle_stop;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  sa.sa_handler = handle_wake;
  sigaction(SIGUSR1, &sa, nullptr);
}

// Exit code per taxonomy code, mirroring csq_cli's table.
int exit_code(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return 0;
    case ErrorCode::kInvalidInput: return 2;
    case ErrorCode::kUnstable: return 3;
    case ErrorCode::kNotConverged: return 4;
    case ErrorCode::kIllConditioned: return 5;
    case ErrorCode::kVerificationFailed: return 6;
    case ErrorCode::kDeadlineExceeded: return 7;
    case ErrorCode::kCancelled: return 8;
    case ErrorCode::kOverloaded: return 9;
    case ErrorCode::kCorruptJournal: return 10;
    case ErrorCode::kInternal: return 1;
  }
  return 1;
}

struct Flags {
  serve::ServerOptions server;
  long max_requests = -1;  // < 0 = unlimited
  bool metrics = false;
  std::string metrics_file;  // "" = stdout
  std::string trace_file;
  std::string fault_spec;
  std::string journal_file;
  bool recover = false;
  int fsync_every = 32;
};

double number_flag(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  double v = 0.0;
  bool ok = true;
  try {
    v = std::stod(value, &used);
  } catch (const std::exception&) {
    ok = false;
  }
  if (!ok || used != value.size())
    throw InvalidInputError("flag --" + key + " needs a number, got \"" + value + "\"");
  return v;
}

int int_flag(const std::string& key, const std::string& value, int lo, int hi) {
  const double v = number_flag(key, value);
  const int i = static_cast<int>(v);
  if (static_cast<double>(i) != v ||  // csq-lint: allow(no-float-eq): integrality check on a parsed flag, not a tolerance comparison
      i < lo || i > hi)
    throw InvalidInputError("flag --" + key + " must be an integer in [" +
                            std::to_string(lo) + ", " + std::to_string(hi) + "]");
  return i;
}

Flags parse_flags(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0)
      throw InvalidInputError("expected --flag, got " + key);
    key = key.substr(2);
    if (key.empty() || key[0] == '=')
      throw InvalidInputError("malformed flag \"" + std::string(argv[i]) +
                              "\": empty flag name");
    std::string value;
    bool has_value = false;
    const std::size_t eq = key.find('=');
    if (eq != std::string::npos) {
      if (eq + 1 == key.size())
        throw InvalidInputError("malformed flag \"" + std::string(argv[i]) +
                                "\": empty value (drop the '=' for a boolean flag)");
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
      has_value = true;
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
      has_value = true;
    }

    const auto need = [&]() -> const std::string& {
      if (!has_value) throw InvalidInputError("flag --" + key + " needs a value");
      return value;
    };
    if (key == "workers") f.server.workers = int_flag(key, need(), 0, 256);
    else if (key == "queue-depth")
      f.server.queue_depth = static_cast<std::size_t>(int_flag(key, need(), 1, 1 << 20));
    else if (key == "max-cost") f.server.max_inflight_cost = number_flag(key, need());
    else if (key == "request-timeout-ms") f.server.request_timeout_ms = number_flag(key, need());
    else if (key == "drain-timeout-ms") f.server.drain_timeout_ms = number_flag(key, need());
    else if (key == "shed-retry-after-ms")
      f.server.shed_retry_after_ms = number_flag(key, need());
    else if (key == "no-degrade") {
      if (has_value) throw InvalidInputError("--no-degrade does not take a value");
      f.server.allow_degraded = false;
    }
    else if (key == "cache-capacity")
      f.server.cache_capacity = static_cast<std::size_t>(int_flag(key, need(), 0, 1 << 20));
    else if (key == "op-threads") f.server.op_threads = int_flag(key, need(), 0, 256);
    else if (key == "retry-attempts") f.server.retry.max_attempts = int_flag(key, need(), 1, 16);
    else if (key == "max-requests") f.max_requests = int_flag(key, need(), 1, 1 << 30);
    else if (key == "metrics") {
      f.metrics = true;
      if (has_value) f.metrics_file = value;
    } else if (key == "trace") {
      if (!has_value)
        throw InvalidInputError("--trace needs a file name (--trace=out.json)");
      f.trace_file = value;
    } else if (key == "fault") f.fault_spec = need();
    else if (key == "journal") f.journal_file = need();
    else if (key == "recover") {
      if (has_value) throw InvalidInputError("--recover does not take a value");
      f.recover = true;
    } else if (key == "fsync-every") f.fsync_every = int_flag(key, need(), 1, 1 << 20);
    else
      throw InvalidInputError("unknown flag --" + key + " (see tools/csq_serve.cc header)");
  }
  if (f.recover && f.journal_file.empty())
    throw InvalidInputError("--recover needs --journal=file to replay from");
  return f;
}

[[nodiscard]] bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return out.good();
}

int write_observability(const Flags& f) {
  int rc = 0;
  if (f.metrics) {
    const std::string json = obs::Registry::instance().metrics_json();
    if (f.metrics_file.empty()) {
      std::cout << json;
    } else if (!write_file(f.metrics_file, json)) {
      std::cerr << "error: cannot write metrics file '" << f.metrics_file << "'\n";
      rc = 2;
    }
  }
  if (!f.trace_file.empty() && !write_file(f.trace_file, obs::chrome_trace_json())) {
    std::cerr << "error: cannot write trace file '" << f.trace_file << "'\n";
    rc = 2;
  }
  return rc;
}

// Pump stdin lines into the server until EOF, a signal, or the request
// quota. In serial mode (--workers 0) each request runs to completion on
// this thread before the next line is read, so responses come back in
// request order, bit-identically. Returns the number of submitted requests.
long pump(serve::Server& server, long max_requests, bool serial) {
  std::string buffered;
  char buf[4096];
  long submitted = 0;
  bool eof = false;
  while (!eof && g_stop == 0 && (max_requests < 0 || submitted < max_requests)) {
    struct pollfd pfd;
    pfd.fd = STDIN_FILENO;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = poll(&pfd, 1, 50);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks g_stop
      break;
    }
    if (ready == 0) continue;  // timeout: re-check g_stop
    const ssize_t n = read(STDIN_FILENO, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      eof = true;
    } else {
      buffered.append(buf, static_cast<std::size_t>(n));
    }
    std::size_t start = 0;
    for (std::size_t nl = buffered.find('\n', start); nl != std::string::npos;
         nl = buffered.find('\n', start)) {
      const std::string line = buffered.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      server.submit(line);
      ++submitted;
      if (serial)
        while (server.process_one()) {
        }
      if (max_requests >= 0 && submitted >= max_requests) break;
    }
    buffered.erase(0, start);
    // A final unterminated line at EOF still counts as a request.
    if (eof && !buffered.empty() && (max_requests < 0 || submitted < max_requests)) {
      server.submit(buffered);
      ++submitted;
      if (serial)
        while (server.process_one()) {
        }
      buffered.clear();
    }
  }
  return submitted;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  try {
    flags = parse_flags(argc, argv);
    if (!flags.fault_spec.empty()) {
      std::string rest = flags.fault_spec;
      while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        const std::string one = rest.substr(0, comma);
        rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
        if (!one.empty()) fault::arm(fault::parse_arm_spec(one));
      }
    }
  } catch (const Error& e) {
    std::cerr << "csq_serve: " << e.status().message << "\n";
    return exit_code(e.status().code);
  }

  install_signal_handlers();

  int rc = 0;
  try {
    flags.server.sink = [](const std::string& response) {
      std::cout << response << "\n" << std::flush;
    };
    durable::Journal journal;
    std::vector<durable::RecoveredRequest> replay_backlog;
    if (!flags.journal_file.empty()) {
      durable::JournalOptions jopts;
      jopts.fsync_every = flags.fsync_every;
      if (flags.recover) {
        durable::Recovery rec = durable::recover(flags.journal_file);
        jopts.next_seq = rec.stats.max_seq + 1;
        // Physically drop a torn tail before appending: new frames after a
        // partial frame would read as mid-file corruption on the *next*
        // recovery, making one crash fatal to the journal.
        if (rec.stats.torn_tail) jopts.trim_tail_bytes = rec.stats.torn_bytes;
        for (durable::RecoveredRequest& rr : rec.requests) {
          if (rr.completed()) {
            // Re-emit the recorded bytes: the client may never have seen
            // them, and a duplicate of identical bytes is harmless.
            std::cout << rr.response << "\n" << std::flush;
          } else {
            replay_backlog.push_back(std::move(rr));
          }
        }
      }
      journal = durable::Journal::open(flags.journal_file, jopts);
      flags.server.journal = &journal;
    }
    serve::Server server(flags.server);
    const bool serial = flags.server.workers == 0;
    // Unfinished recovered requests re-execute under their original seq
    // before any new stdin traffic, preserving journal order.
    for (const durable::RecoveredRequest& rr : replay_backlog) {
      server.submit_recovered(rr.request, rr.seq);
      if (serial)
        while (server.process_one()) {
        }
    }
    pump(server, flags.max_requests, serial);
    server.drain();
    journal.close();
  } catch (const Error& e) {
    std::cerr << "csq_serve: " << e.status().message << "\n";
    rc = exit_code(e.status().code);
  } catch (const std::exception& e) {
    std::cerr << "csq_serve: " << e.what() << "\n";
    rc = 1;
  }
  const int obs_rc = write_observability(flags);
  return rc != 0 ? rc : obs_rc;
}
