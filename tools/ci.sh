#!/usr/bin/env sh
# One-shot local CI: dev build + fast test tiers, then the staged
# strict-build matrix (tools/check_warnings.sh: Werror -> ASan/UBSan ->
# TSan -> clang-tidy (if installed) -> csq_lint).
#
# Set CSQ_CI_FULL=1 to also run the slow suite (truncated-chain
# cross-checks, million-completion simulations) in the dev build.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root" >/dev/null
cmake --build "$build_dir" -j
(cd "$build_dir" && ctest -L 'tier1|lint|parallel' --output-on-failure)
if [ "${CSQ_CI_FULL:-0}" = "1" ]; then
  (cd "$build_dir" && ctest -L slow --output-on-failure)
fi

exec "$repo_root/tools/check_warnings.sh"
