// Machine-readable output for csq_lint (--format=json|sarif) and the
// reviewed-baseline workflow (lint_baseline.json).
//
// The SARIF emitter targets SARIF 2.1.0 with the minimal schema surface CI
// viewers consume: one run, the full rule catalog on the driver, one result
// per finding with a physicalLocation region. tools/validate_sarif.py
// structurally validates the output in a ctest.
//
// The baseline grandfathers reviewed findings as {rule, file, count, reason}
// entries with exact-count matching: an entry suppresses its findings only
// while the live count equals the recorded count. Fewer findings than
// recorded → the entry is stale (a "baseline" meta finding says refresh);
// more → nothing is suppressed and the whole group surfaces. Either way the
// baseline cannot rot silently.
#pragma once

#include <string>
#include <vector>

#include "lint.h"

namespace csq::lint {

// Findings as a stable JSON document: {"tool","count","findings":[...]}.
[[nodiscard]] std::string to_json(const std::vector<Finding>& findings);

// Findings as a SARIF 2.1.0 log (rule catalog included on the driver).
[[nodiscard]] std::string to_sarif(const std::vector<Finding>& findings);

struct BaselineEntry {
  std::string rule;
  std::string file;  // repo-relative path, '/'-separated
  int count = 0;
  std::string reason;
};

// Parse a lint_baseline.json document:
//   {"entries": [{"rule": "...", "file": "...", "count": N, "reason": "..."}]}
// Returns false with `error` set on malformed input (the caller reports it
// as kInvalidInput rather than scanning without a baseline).
[[nodiscard]] bool load_baseline(const std::string& text, std::vector<BaselineEntry>* out,
                                 std::string* error);

// Apply the baseline to `findings` (post-suppression): exact-count matched
// groups are removed; stale/over-count/unjustified entries append "baseline"
// meta findings anchored at `baseline_name`. Result stays sorted.
[[nodiscard]] std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                                  const std::vector<BaselineEntry>& entries,
                                                  const std::string& baseline_name);

}  // namespace csq::lint
