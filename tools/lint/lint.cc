#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "callgraph.h"
#include "index.h"

namespace csq::lint {

namespace {

[[nodiscard]] bool starts_with(const std::string& s, const std::string& p) {
  return s.size() >= p.size() && s.compare(0, p.size(), p) == 0;
}

[[nodiscard]] bool ends_with(const std::string& s, const std::string& p) {
  return s.size() >= p.size() && s.compare(s.size() - p.size(), p.size(), p) == 0;
}

[[nodiscard]] std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

[[nodiscard]] bool is_ident_start(char c) {
  return (std::isalpha(static_cast<unsigned char>(c)) != 0) || c == '_';
}

[[nodiscard]] bool is_ident_char(char c) {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

// Multi-character punctuators, longest first so "..." beats "..".
const char* const kPunct3[] = {"...", "<<=", ">>=", "->*"};
const char* const kPunct2[] = {"::", "->", "++", "--", "<<", ">>", "<=", ">=", "==",
                               "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=",
                               "|=", "^="};

}  // namespace

SourceFile scan_source(std::string path, std::string rel, std::string content) {
  SourceFile f;
  f.path = std::move(path);
  f.rel = std::move(rel);
  f.content = std::move(content);
  f.is_header = ends_with(f.rel, ".h") || ends_with(f.rel, ".hpp");

  const std::string& s = f.content;
  const std::size_t n = s.size();
  std::size_t i = 0;
  int line = 1;
  int last_code_line = 0;   // line of the most recent token or directive
  bool at_line_start = true;  // only whitespace seen so far on this line

  const auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i)
      if (s[i] == '\n') line++;
  };

  while (i < n) {
    const char c = s[i];
    if (c == '\n') {
      at_line_start = true;
      advance(1);
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      advance(1);
      continue;
    }

    // Preprocessor directive (only at the start of a line).
    if (c == '#' && at_line_start) {
      Directive d;
      d.line = line;
      std::size_t j = i;
      while (j < n && (s[j] != '\n' || (j > 0 && s[j - 1] == '\\'))) ++j;
      d.text = s.substr(i, j - i);
      // `//` comments on the directive's physical lines (including macro
      // continuation lines) still count as comments — suppression markers
      // may sit there.
      {
        std::size_t begin = 0;
        int dline = line;
        while (begin <= d.text.size()) {
          const std::size_t nl = d.text.find('\n', begin);
          const std::string physical =
              d.text.substr(begin, nl == std::string::npos ? std::string::npos : nl - begin);
          const std::size_t cpos = physical.find("//");
          if (cpos != std::string::npos)
            f.comments.push_back({dline, trim(physical.substr(cpos + 2)), false});
          if (nl == std::string::npos) break;
          begin = nl + 1;
          ++dline;
        }
      }
      // Strip a trailing // comment so "#include <x>  // y" stays matchable.
      const std::size_t cpos = d.text.find("//");
      if (cpos != std::string::npos) d.text = d.text.substr(0, cpos);
      d.text = trim(d.text);
      f.directives.push_back(std::move(d));
      last_code_line = line;
      at_line_start = false;
      advance(j - i);
      continue;
    }
    at_line_start = false;

    // Line comment.
    if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      Comment cm;
      cm.line = line;
      cm.own_line = last_code_line != line;
      std::size_t j = i + 2;
      while (j < n && s[j] != '\n') ++j;
      cm.text = trim(s.substr(i + 2, j - i - 2));
      f.comments.push_back(std::move(cm));
      advance(j - i);
      continue;
    }
    // Block comment. The text keeps its raw interior (newlines included) so
    // consumers can recover per-line offsets — parse_suppressions binds a
    // marker on interior line k to cm.line + k.
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      Comment cm;
      cm.line = line;
      cm.own_line = last_code_line != line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(s[j] == '*' && s[j + 1] == '/')) ++j;
      cm.text = s.substr(i + 2, j - i - 2);
      f.comments.push_back(std::move(cm));
      advance(std::min(n, j + 2) - i);
      continue;
    }

    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && s[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && s[j] != '(') delim += s[j++];
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = s.find(closer, j);
      const std::size_t stop = end == std::string::npos ? n : end + closer.size();
      f.tokens.push_back({TokKind::kString, s.substr(i, stop - i), line});
      last_code_line = line;
      advance(stop - i);
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && s[j] != quote) {
        if (s[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      f.tokens.push_back({quote == '"' ? TokKind::kString : TokKind::kChar,
                          s.substr(i, std::min(n, j + 1) - i), line});
      last_code_line = line;
      advance(std::min(n, j + 1) - i);
      continue;
    }

    // Identifier / keyword.
    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && is_ident_char(s[j])) ++j;
      f.tokens.push_back({TokKind::kIdent, s.substr(i, j - i), line});
      last_code_line = line;
      advance(j - i);
      continue;
    }

    // Number (pp-number approximation: 1.5e-3, 0x1F, 1'000, .5).
    const bool dot_number =
        c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(s[i + 1])) != 0;
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 || dot_number) {
      std::size_t j = i + 1;
      while (j < n) {
        const char d = s[j];
        if (is_ident_char(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') && j > i &&
                   (s[j - 1] == 'e' || s[j - 1] == 'E' || s[j - 1] == 'p' ||
                    s[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      f.tokens.push_back({TokKind::kNumber, s.substr(i, j - i), line});
      last_code_line = line;
      advance(j - i);
      continue;
    }

    // Punctuation, longest match first.
    std::string p(1, c);
    for (const char* q : kPunct3)
      if (s.compare(i, 3, q) == 0) {
        p = q;
        break;
      }
    if (p.size() == 1)
      for (const char* q : kPunct2)
        if (s.compare(i, 2, q) == 0) {
          p = q;
          break;
        }
    f.tokens.push_back({TokKind::kPunct, p, line});
    last_code_line = line;
    advance(p.size());
  }
  return f;
}

std::string format_finding(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " + f.message;
}

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"raw-throw", "only core/status.h taxonomy types may be thrown (outside tests/)",
       "Every error the tree raises must be one of the core/status.h taxonomy types\n"
       "(InvalidInputError, UnstableError, NotConvergedError, ...): callers dispatch\n"
       "on the taxonomy, the serve tier maps it onto wire error codes, and the CLI\n"
       "maps it onto exit codes. A raw `throw std::runtime_error(...)` (or any\n"
       "non-taxonomy type) bypasses all three. Fix: pick the taxonomy type whose\n"
       "contract matches the failure; if none fits, the taxonomy is missing a case."},
      {"no-float-eq", "no ==/!= against floating-point literals; use core/numeric.h",
       "Exact ==/!= against a floating-point literal is almost never what a numeric\n"
       "solver means: R-iteration residuals, busy-period moments and simulated means\n"
       "carry rounding error by construction. Fix: csq::num::approx_eq/approx_zero\n"
       "for tolerant comparison, or exactly_eq/exactly_zero when bit-exactness IS\n"
       "the intent (golden files, determinism gates) — that spelling documents it."},
      {"nondeterminism", "no rand/random_device/time()/now() in sim/, msim/, parallel/",
       "The simulators and the parallel runtime promise bit-identical results for a\n"
       "fixed seed (the golden suite and the cross-backend equivalence tests depend\n"
       "on it). std::rand, std::random_device, time() and clock ::now() calls break\n"
       "that promise. Fix: draw from sim::Rng seeded via split_seed substreams; get\n"
       "wall-clock measurements from the obs layer outside the deterministic core."},
      {"hot-path-alloc", "hot-file loops must use *_into kernels, not allocating operators",
       "Loops in the hot files (qbd/qbd.cc, linalg/lu.cc, linalg/matrix.cc) dominate\n"
       "the per-point analysis budget (< 100us, benchmarked by BM_AnalyzeCscq). An\n"
       "allocating matrix/vector operator inside such a loop re-heap-allocates every\n"
       "iteration. Fix: use the *_into workspace kernels (multiply_into & co.) with\n"
       "a workspace allocated once outside the loop."},
      {"header-hygiene", "#pragma once, no `using namespace`, direct std includes in headers",
       "Headers must carry `#pragma once`, must not leak `using namespace` into\n"
       "every includer, and must include the std headers for the std symbols they\n"
       "use (include-what-you-use lite) so refactors cannot orphan a transitive\n"
       "include. Fix: add the pragma / the direct #include, or qualify the name."},
      {"error-docs", "headers must document the taxonomy errors their .cc throws",
       "A src/ header is the API contract; every taxonomy error class its .cc\n"
       "throws directly is part of that contract and must appear in the header\n"
       "(conventionally a `Throws csq::X` line in the API comment). InternalError\n"
       "is exempt: invariant breaches are bugs, not contract. See also throw-flow\n"
       "(R13), which extends this check through the call graph."},
      {"catch-all-swallow", "catch (...) must rethrow or convert to SolverStatus",
       "A catch (...) that neither rethrows nor converts the exception into a\n"
       "SolverStatus/taxonomy response silently discards failures the caller was\n"
       "promised to see (and under fault injection, hides injected faults). Fix:\n"
       "rethrow, capture via std::current_exception, or build a taxonomy error."},
      {"banned-identifier", "assert()/rand()/srand()/gets() are banned (CSQ_ASSERT, sim::Rng)",
       "assert() compiles out under NDEBUG so release builds silently drop the\n"
       "check — use CSQ_ASSERT (core/check.h), which always fires and reports\n"
       "through the taxonomy. rand()/srand() break seeded determinism — use\n"
       "sim::Rng. gets() is unsalvageable."},
      {"fault-site-naming",
       "fault sites are literal module.sub.action strings, registered exactly once",
       "CSQ_FAULT_POINT sites form the chaos suite's fault catalogue; tests arm\n"
       "sites by name. A non-literal name makes the catalogue unenumerable, and a\n"
       "duplicate registration makes hits() counts and single-shot arming\n"
       "ambiguous. Fix: literal \"module.sub.action\" (three lowercase segments),\n"
       "one registration site per name repo-wide."},
      {"metric-naming",
       "obs metric/span names are literal module.sub.metric strings, registered exactly once",
       "CSQ_OBS_* names share one namespace across counters, gauges, histograms\n"
       "and spans, and docs/observability.md maps each name to one source\n"
       "location. Same grammar and uniqueness contract as fault sites: literal\n"
       "\"module.sub.metric\", exactly one call site per name (tests/ exempt)."},
      {"serve-hygiene",
       "serve code must not exit/abort or bypass the bounded admit path; serve.* metrics "
       "must be in the docs catalog",
       "Request-handler code degrades, it never dies: no exit/abort/terminate (a\n"
       "handler converts failures into taxonomy responses), no pushing onto a\n"
       "request queue outside the bounded admit gate (admission checks queue depth\n"
       "and in-flight cost first), and every serve.* obs name must appear in the\n"
       "docs/serving.md catalog so the dashboard surface cannot drift."},
      {"hot-path-generic-mult",
       "QBD solver code must use the structure-aware multiply kernels "
       "(multiply_into_pattern / multiply_into_dense), not the generic multiply_into",
       "Inside the QBD iteration the generic linalg::multiply_into re-discovers the\n"
       "block structure element by element on every call; the structure-aware\n"
       "kernels (multiply_into_pattern on cached BlockPatterns, multiply_into_dense\n"
       "for the dense case) are the reason BM_AnalyzeCscq holds its budget. Fix:\n"
       "dispatch through them, or suppress with the reason no structure exists."},
      {"throw-flow",
       "header `Throws csq::*` contracts must match what the call graph proves "
       "can escape (R13)",
       "R13 upgrades error-docs from text match to flow analysis: taxonomy throws\n"
       "are propagated through the conservative call graph (catch clauses filter,\n"
       "unresolved calls contribute nothing), and each src/ header is compared\n"
       "against what can actually escape its public functions. Undocumented\n"
       "escapes that only arrive through callees are findings; so are stale\n"
       "`Throws csq::X` entries nothing backs up. Fix: add or drop the contract\n"
       "line, or catch-and-convert at the API boundary."},
      {"deadline-poll",
       "solver/simulator loops that reach an iterative kernel must poll "
       "RunBudget/CancelToken (R14)",
       "The cooperative-cancellation contract (core/deadline.h): any loop in\n"
       "src/{qbd,ctmc,mg1,sim,msim,core} whose body transitively reaches an\n"
       "iterative kernel must poll the budget — interrupted()/expired()/\n"
       "cancelled()/check() in the loop, or a callee that provably polls.\n"
       "Unresolved calls never count as polling (conservative direction: a loop\n"
       "is only accepted on evidence). Fix: add a poll or push the budget down."},
      {"hot-path-alloc-transitive",
       "hot-file loops must not reach allocating callees through the call graph (R15)",
       "R15 upgrades hot-path-alloc to call-graph reachability: a call inside a\n"
       "hot-file loop whose resolved callee allocates (new, push_back/resize/\n"
       "reserve/insert, Matrix/Vector construction — directly or transitively) is\n"
       "a finding even though the loop body itself looks clean. Fix: hoist the\n"
       "allocation into a workspace parameter, or suppress with the reason the\n"
       "allocation is one-time (first-call warm-up, growth capped)."},
      {"atomic-order",
       "non-seq_cst memory orders in src/parallel|obs need a rationale comment; "
       "bare seq_cst in hot loops is flagged (R16)",
       "Every memory_order_relaxed/acquire/release/acq_rel in src/parallel/ and\n"
       "src/obs/ must carry a nearby comment stating why the relaxation is safe\n"
       "(what the release pairs with, why relaxed counters tolerate reordering).\n"
       "Conversely a bare seq_cst inside a src/parallel/ loop is a cost that\n"
       "deserves the same scrutiny — justify the full fence or relax it with a\n"
       "rationale. The comment may sit on the site, just above it, or in the\n"
       "function's doc block."},
      {"module-layering",
       "includes must follow the module DAG core -> linalg -> jets/dist/transforms "
       "-> qbd/ctmc/mg1 -> analysis -> sim/msim/parallel -> serve/tools; cycles are "
       "findings (R17)",
       "The module DAG keeps the solver core reusable and the build layerable:\n"
       "an #include pointing at a higher layer couples the foundation to its\n"
       "consumers, and an include cycle means neither file can be understood (or\n"
       "compiled) alone. obs is cross-cutting and may be included from anywhere.\n"
       "Fix: invert the dependency (callback, interface header) or move the\n"
       "shared piece down; grandfathered edges live in lint_baseline.json with\n"
       "per-entry justifications."},
      {"journal-hygiene",
       "serve code must not do direct file I/O (durability goes through src/durable/); "
       "rename() publishes in src/durable/ need an fsync (R18)",
       "Durability is a protocol, not a convenience: the journal/checkpoint layer\n"
       "(src/durable/) owns the CRC framing, the append ordering and the\n"
       "flush-before-publish discipline that recovery (csq_serve --recover,\n"
       "checkpointed sweeps) depends on. Request-handler code opening files on\n"
       "its own (ofstream, fopen, open, write, ...) creates state no recovery\n"
       "path replays — route it through durable::Journal or the checkpoint API.\n"
       "Inside src/durable/, a rename() publish in a file with no fsync call can\n"
       "expose a torn artifact after power loss: the directory entry can reach\n"
       "disk before the file's bytes do. Fix: fsync the descriptor before the\n"
       "rename (tmp + fsync + rename)."},
      {"policy-registry",
       "every sim PolicyKind enumerator must be wired through policy_name(), "
       "make_policy() and the docs/policies.md policy table (R19)",
       "The policy zoo is plug-in by registry: PolicyKind is its key space, and\n"
       "a kind that policy_name() cannot print, make_policy() cannot construct,\n"
       "or docs/policies.md does not describe is a half-registered policy — the\n"
       "CLI and serve layer would accept its token and then fail downstream, or\n"
       "serve an undocumented policy. Fix: add the missing policy_name /\n"
       "make_policy case, and a docs table row containing the display name\n"
       "policy_name() returns."},
      {"suppression", "csq-lint: allow(...) comments must name a known rule and give a reason",
       "A suppression is `// csq-lint: allow(rule-id): reason` on the finding's\n"
       "line or the line above (block-comment interiors and stacked\n"
       "`allow(a) allow(b): reason` also work). The reason is mandatory — it is\n"
       "the reviewable justification. Malformed markers (unknown rule, missing\n"
       "reason) are themselves findings, and they cannot be suppressed."},
      {"baseline", "lint_baseline.json entries must stay justified and exactly matched",
       "The baseline grandfathers reviewed findings as {rule, file, count, reason}\n"
       "entries with exact-count matching: when the tree improves below the\n"
       "recorded count the entry goes stale and this meta-rule flags it (refresh\n"
       "the baseline); when findings grow past the count, the excess surfaces as\n"
       "ordinary findings. Entries without a reason are findings too."},
  };
  return kRules;
}

namespace {

[[nodiscard]] bool known_rule(const std::string& id) {
  for (const RuleInfo& r : rules())
    if (id == r.id) return true;
  return false;
}

}  // namespace

std::vector<Suppression> parse_suppressions(const SourceFile& file,
                                            std::vector<Finding>* malformed) {
  std::vector<Suppression> out;
  const std::string kTag = "csq-lint:";
  for (const Comment& c : file.comments) {
    // A comment is scanned one physical line at a time: the marker must open
    // a line (after stripping whitespace and a leading '*' decoration), so
    // prose that merely *mentions* `csq-lint: ...` (docs, this very file) is
    // not a suppression attempt. This makes markers work inside multi-line
    // /* */ comments and on macro-continuation lines alike.
    const int end_line =
        c.line + static_cast<int>(std::count(c.text.begin(), c.text.end(), '\n'));
    std::size_t begin = 0;
    int lineno = c.line;
    while (begin <= c.text.size()) {
      const std::size_t nl = c.text.find('\n', begin);
      std::string ln = trim(
          c.text.substr(begin, nl == std::string::npos ? std::string::npos : nl - begin));
      while (starts_with(ln, "*")) ln = trim(ln.substr(1));  // block-comment gutter
      const int marker_line = lineno;
      if (nl == std::string::npos)
        begin = c.text.size() + 1;
      else {
        begin = nl + 1;
        ++lineno;
      }
      if (!starts_with(ln, kTag)) continue;

      std::string rest = trim(ln.substr(kTag.size()));
      const auto bad = [&](const std::string& why) {
        if (malformed != nullptr)
          malformed->push_back(
              {file.path, marker_line, "suppression", why + ": `" + ln + "`"});
      };
      // One marker may stack several groups: `allow(a) allow(b): reason`
      // (the reason applies to every listed rule).
      std::vector<std::string> rule_ids;
      bool ok = true;
      while (starts_with(rest, "allow(")) {
        const std::size_t close = rest.find(')');
        if (close == std::string::npos) {
          bad("unterminated allow(");
          ok = false;
          break;
        }
        const std::string id = trim(rest.substr(6, close - 6));
        if (!known_rule(id)) {
          bad("unknown rule id `" + id + "`");
          ok = false;
          break;
        }
        rule_ids.push_back(id);
        rest = trim(rest.substr(close + 1));
      }
      if (!ok) continue;
      if (rule_ids.empty()) {
        bad("malformed csq-lint comment (expected `allow(rule-id): reason`)");
        continue;
      }
      if (!starts_with(rest, ":")) {
        bad("missing reason (write `allow(" + rule_ids.front() + "): why this is safe`)");
        continue;
      }
      const std::string reason = trim(rest.substr(1));
      if (reason.empty()) {
        bad("empty reason (write `allow(" + rule_ids.front() + "): why this is safe`)");
        continue;
      }
      for (const std::string& id : rule_ids) {
        Suppression s;
        s.line = marker_line;
        s.alt_line = end_line + 1;  // line after a block comment closes
        s.rule = id;
        s.reason = reason;
        out.push_back(std::move(s));
      }
    }
  }
  return out;
}

namespace {

using Tokens = std::vector<Token>;

[[nodiscard]] bool in_any_dir(const std::string& rel, const std::vector<std::string>& dirs) {
  for (const std::string& d : dirs)
    if (starts_with(rel, d)) return true;
  return false;
}

[[nodiscard]] bool is_hot_file(const std::string& rel, const Config& cfg) {
  for (const std::string& h : cfg.hot_files)
    if (ends_with(rel, h)) return true;
  return false;
}

[[nodiscard]] bool is_float_literal(const Token& t) {
  if (t.kind != TokKind::kNumber) return false;
  if (starts_with(t.text, "0x") || starts_with(t.text, "0X")) return false;
  return t.text.find('.') != std::string::npos || t.text.find('e') != std::string::npos ||
         t.text.find('E') != std::string::npos;
}

// Index of the token matching the opener at `open` ("("/")" or "{"/"}"),
// or tokens.size() if unbalanced.
[[nodiscard]] std::size_t matching(const Tokens& toks, std::size_t open, const char* o,
                                   const char* c) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == o) ++depth;
    if (toks[i].text == c && --depth == 0) return i;
  }
  return toks.size();
}

// Marks tokens inside for/while loop *bodies* (headers excluded, so the
// init-statement `i = 0` never looks like an in-loop assignment).
[[nodiscard]] std::vector<bool> loop_body_mask(const Tokens& toks) {
  std::vector<bool> mask(toks.size(), false);
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || (toks[i].text != "for" && toks[i].text != "while"))
      continue;
    std::size_t open = i + 1;
    if (open >= toks.size() || toks[open].text != "(") continue;
    const std::size_t close = matching(toks, open, "(", ")");
    if (close >= toks.size()) continue;
    std::size_t body_begin = close + 1;
    std::size_t body_end;
    if (body_begin < toks.size() && toks[body_begin].text == "{") {
      body_end = matching(toks, body_begin, "{", "}");
    } else {
      body_end = body_begin;
      while (body_end < toks.size() && toks[body_end].text != ";") ++body_end;
    }
    for (std::size_t k = body_begin; k < toks.size() && k <= body_end; ++k) mask[k] = true;
  }
  return mask;
}

void rule_raw_throw(const SourceFile& f, const Config& cfg, std::vector<Finding>* out) {
  if (starts_with(f.rel, "tests/")) return;
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || t[i].text != "throw") continue;
    if (i + 1 >= t.size()) continue;
    if (t[i + 1].kind == TokKind::kPunct && t[i + 1].text == ";") continue;  // rethrow
    // Collect the qualified type name up to the constructor '('.
    std::string last_component;
    std::string spelled;
    std::size_t j = i + 1;
    while (j < t.size() &&
           ((t[j].kind == TokKind::kIdent) || (t[j].kind == TokKind::kPunct && t[j].text == "::"))) {
      if (t[j].kind == TokKind::kIdent) last_component = t[j].text;
      spelled += t[j].text;
      ++j;
    }
    const bool allowed =
        std::find(cfg.allowed_throw_types.begin(), cfg.allowed_throw_types.end(),
                  last_component) != cfg.allowed_throw_types.end();
    if (!allowed)
      out->push_back({f.path, t[i].line, "raw-throw",
                      "`throw " + (spelled.empty() ? "<expr>" : spelled) +
                          "` — throw a core/status.h taxonomy type "
                          "(InvalidInputError, UnstableError, ...) instead"});
  }
}

void rule_no_float_eq(const SourceFile& f, std::vector<Finding>* out) {
  const Tokens& t = f.tokens;
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kPunct || (t[i].text != "==" && t[i].text != "!=")) continue;
    if (is_float_literal(t[i - 1]) || is_float_literal(t[i + 1]))
      out->push_back({f.path, t[i].line, "no-float-eq",
                      "exact floating-point `" + t[i].text +
                          "` — use csq::num::approx_eq/approx_zero (or "
                          "exactly_eq/exactly_zero when bit-exactness is the intent)"});
  }
}

void rule_nondeterminism(const SourceFile& f, const Config& cfg, std::vector<Finding>* out) {
  if (!in_any_dir(f.rel, cfg.deterministic_dirs)) return;
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string& id = t[i].text;
    const bool call = i + 1 < t.size() && t[i + 1].text == "(";
    if (id == "rand" || id == "srand" || id == "random_device") {
      out->push_back({f.path, t[i].line, "nondeterminism",
                      "`" + id + "` in a bit-deterministic component — seed sim::Rng "
                          "through split_seed substreams instead"});
    } else if (id == "time" && call) {
      out->push_back({f.path, t[i].line, "nondeterminism",
                      "`time()` in a bit-deterministic component — results must not "
                          "depend on the wall clock"});
    } else if (id == "now" && call && i > 0 && t[i - 1].text == "::") {
      out->push_back({f.path, t[i].line, "nondeterminism",
                      "`::now()` in a bit-deterministic component — results must not "
                          "depend on the wall clock"});
    }
  }
}

void rule_hot_path_alloc(const SourceFile& f, const Config& cfg, std::vector<Finding>* out) {
  if (!is_hot_file(f.rel, cfg)) return;
  const Tokens& t = f.tokens;
  const std::vector<bool> in_loop = loop_body_mask(t);
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!in_loop[i] || t[i].kind != TokKind::kPunct || t[i].text != "=") continue;
    // Scan the right-hand side of the assignment for a binary `*` between
    // non-literal operands; a statement that already calls an *_into kernel
    // is exempt.
    bool has_into = false;
    std::size_t star = 0;
    for (std::size_t j = i + 1; j < t.size(); ++j) {
      const std::string& x = t[j].text;
      if (t[j].kind == TokKind::kPunct && (x == ";" || x == "{" || x == "}")) break;
      if (t[j].kind == TokKind::kIdent && x.find("_into") != std::string::npos)
        has_into = true;
      if (star == 0 && t[j].kind == TokKind::kPunct && x == "*" && j > 0 &&
          j + 1 < t.size()) {
        const Token& l = t[j - 1];
        const Token& r = t[j + 1];
        const bool l_ok = l.kind == TokKind::kIdent ||
                          (l.kind == TokKind::kPunct && (l.text == ")" || l.text == "]"));
        const bool r_ok = r.kind == TokKind::kIdent ||
                          (r.kind == TokKind::kPunct && r.text == "(");
        if (l_ok && r_ok && l.kind != TokKind::kNumber && r.kind != TokKind::kNumber)
          star = j;
      }
    }
    if (star != 0 && !has_into)
      out->push_back({f.path, t[star].line, "hot-path-alloc",
                      "allocating operator in a hot-path loop — use the *_into "
                          "workspace kernel (linalg::multiply_into & co.)"});
  }
}

// R12: inside the QBD solver the generic multiply_into is a performance
// bug by default — the hot loops must dispatch on the cached BlockPatterns
// (linalg::multiply_into_pattern) or the restrict dense kernel
// (multiply_into_dense). The tokenizer keeps multiply_into_pattern /
// multiply_into_dense as distinct identifiers, so only the bare generic
// call matches. Legitimate generic sites (no block structure to exploit,
// e.g. row-vector recursions) carry a csq-lint: allow(...) with the reason.
void rule_hot_path_generic_mult(const SourceFile& f, const Config& cfg,
                                std::vector<Finding>* out) {
  if (!in_any_dir(f.rel, cfg.structured_mult_paths)) return;
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || t[i].text != "multiply_into") continue;
    if (t[i + 1].kind != TokKind::kPunct || t[i + 1].text != "(") continue;
    out->push_back({f.path, t[i].line, "hot-path-generic-mult",
                    "generic multiply_into in QBD solver code — dispatch through "
                        "linalg::multiply_into_pattern / multiply_into_dense, or "
                        "suppress with the reason no block structure exists here"});
  }
}

void rule_header_hygiene(const SourceFile& f, std::vector<Finding>* out) {
  if (!f.is_header) return;
  bool pragma_once = false;
  for (const Directive& d : f.directives)
    if (d.text == "#pragma once") pragma_once = true;
  if (!pragma_once)
    out->push_back({f.path, 1, "header-hygiene", "missing `#pragma once`"});

  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i)
    if (t[i].kind == TokKind::kIdent && t[i].text == "using" &&
        t[i + 1].kind == TokKind::kIdent && t[i + 1].text == "namespace")
      out->push_back({f.path, t[i].line, "header-hygiene",
                      "`using namespace` in a header leaks into every includer"});

  // Include-what-you-use lite: common std symbols must have their header
  // included directly, not reached transitively.
  static const std::map<std::string, std::vector<std::string>> kStdHeader = {
      {"vector", {"<vector>"}},
      {"string", {"<string>"}},
      {"map", {"<map>"}},
      {"array", {"<array>"}},
      {"deque", {"<deque>"}},
      {"function", {"<functional>"}},
      {"atomic", {"<atomic>"}},
      {"mutex", {"<mutex>"}},
      {"thread", {"<thread>"}},
      {"optional", {"<optional>"}},
      {"unique_ptr", {"<memory>"}},
      {"shared_ptr", {"<memory>"}},
      {"size_t", {"<cstddef>"}},
      {"ptrdiff_t", {"<cstddef>"}},
      {"uint32_t", {"<cstdint>"}},
      {"uint64_t", {"<cstdint>"}},
      {"int64_t", {"<cstdint>"}},
      {"initializer_list", {"<initializer_list>"}},
      {"condition_variable", {"<condition_variable>"}},
      {"exception_ptr", {"<exception>"}},
      {"ostream", {"<ostream>", "<iosfwd>"}},
      {"istream", {"<istream>", "<iosfwd>"}},
  };
  std::set<std::string> reported;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || t[i].text != "std" || t[i + 1].text != "::") continue;
    const auto it = kStdHeader.find(t[i + 2].text);
    if (it == kStdHeader.end()) continue;
    bool included = false;
    for (const std::string& hdr : it->second)
      for (const Directive& d : f.directives)
        if (starts_with(d.text, "#include") && d.text.find(hdr) != std::string::npos)
          included = true;
    if (!included && reported.insert(it->second.front()).second)
      out->push_back({f.path, t[i].line, "header-hygiene",
                      "std::" + t[i + 2].text + " used but " + it->second.front() +
                          " not included directly"});
  }
}

void rule_catch_all(const SourceFile& f, std::vector<Finding>* out) {
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || t[i].text != "catch") continue;
    if (t[i + 1].text != "(" || t[i + 2].text != "..." || t[i + 3].text != ")") continue;
    std::size_t open = i + 4;
    if (open >= t.size() || t[open].text != "{") continue;
    const std::size_t close = matching(t, open, "{", "}");
    bool handles = false;
    for (std::size_t j = open + 1; j < close; ++j)
      if (t[j].kind == TokKind::kIdent &&
          (t[j].text == "throw" || t[j].text == "rethrow_exception" ||
           t[j].text == "current_exception" || t[j].text == "status_from_exception" ||
           t[j].text == "ErrorCode"))
        handles = true;
    if (!handles)
      out->push_back({f.path, t[i].line, "catch-all-swallow",
                      "catch (...) swallows the exception — rethrow, capture via "
                          "std::current_exception, or convert to a SolverStatus"});
  }
}

void rule_banned_identifier(const SourceFile& f, const Config& cfg,
                            std::vector<Finding>* out) {
  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || t[i + 1].text != "(") continue;
    if (std::find(cfg.banned_identifiers.begin(), cfg.banned_identifiers.end(), t[i].text) ==
        cfg.banned_identifiers.end())
      continue;
    const std::string hint = t[i].text == "assert"
                                 ? "use CSQ_ASSERT (core/check.h) — assert() compiles "
                                   "out under NDEBUG"
                                 : "banned by the project rule set (determinism/safety)";
    out->push_back(
        {f.path, t[i].line, "banned-identifier", "`" + t[i].text + "(` — " + hint});
  }
}

// error-docs (cross-file): each src/**/x.h must mention every taxonomy error
// class its x.cc throws. InternalError is exempt — invariant breaches are
// bugs, not API contract.
void rule_error_docs(const std::vector<SourceFile>& files, std::vector<Finding>* out) {
  std::map<std::string, const SourceFile*> headers;
  for (const SourceFile& f : files)
    if (f.is_header) headers[f.rel.substr(0, f.rel.rfind('.'))] = &f;
  for (const SourceFile& f : files) {
    if (f.is_header || !starts_with(f.rel, "src/") || !ends_with(f.rel, ".cc")) continue;
    const auto it = headers.find(f.rel.substr(0, f.rel.rfind('.')));
    if (it == headers.end()) continue;
    std::set<std::string> thrown;
    for (std::size_t i = 0; i + 1 < f.tokens.size(); ++i) {
      if (f.tokens[i].kind != TokKind::kIdent || f.tokens[i].text != "throw") continue;
      // Last component of the (possibly csq::-qualified) thrown type.
      std::string last;
      for (std::size_t j = i + 1; j < f.tokens.size() &&
                                  (f.tokens[j].kind == TokKind::kIdent ||
                                   f.tokens[j].text == "::");
           ++j)
        if (f.tokens[j].kind == TokKind::kIdent) last = f.tokens[j].text;
      if (ends_with(last, "Error") && last != "InternalError") thrown.insert(last);
    }
    for (const std::string& e : thrown)
      if (it->second->content.find(e) == std::string::npos)
        out->push_back({it->second->path, 1, "error-docs",
                        "does not document csq::" + e + " thrown by " + f.rel +
                            " (add a `Throws csq::" + e + "` note to the API comment)"});
  }
}

// A fault site is module.sub.action: exactly three '.'-separated segments,
// each a lowercase identifier ([a-z][a-z0-9_]*).
[[nodiscard]] bool valid_fault_site(const std::string& site) {
  int segments = 0;
  std::size_t begin = 0;
  while (begin <= site.size()) {
    std::size_t end = site.find('.', begin);
    if (end == std::string::npos) end = site.size();
    if (end == begin) return false;  // empty segment
    if (site[begin] < 'a' || site[begin] > 'z') return false;
    for (std::size_t i = begin; i < end; ++i) {
      const char c = site[i];
      const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
      if (!ok) return false;
    }
    ++segments;
    if (end == site.size()) break;
    begin = end + 1;
  }
  return segments == 3;
}

// fault-site-naming (cross-file): every CSQ_FAULT_POINT /
// CSQ_FAULT_POINT_MATRIX site must be a literal "module.sub.action" string,
// and each site must be registered at exactly one call site repo-wide —
// duplicate registrations make fault::hits() counts and single-shot arming
// ambiguous.
void rule_fault_site_naming(const std::vector<SourceFile>& files,
                            std::vector<Finding>* out) {
  struct FirstSeen {
    std::string rel;
    int line = 0;
  };
  std::map<std::string, FirstSeen> seen;
  for (const SourceFile& f : files) {
    if (starts_with(f.rel, "tests/")) continue;
    const Tokens& t = f.tokens;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent ||
          (t[i].text != "CSQ_FAULT_POINT" && t[i].text != "CSQ_FAULT_POINT_MATRIX"))
        continue;
      if (t[i + 1].text != "(") continue;
      if (t[i + 2].kind != TokKind::kString) {
        out->push_back({f.path, t[i].line, "fault-site-naming",
                        t[i].text + " site must be a string literal so the site "
                            "catalogue is statically enumerable"});
        continue;
      }
      // Strip the quotes the tokenizer preserves.
      const std::string site = t[i + 2].text.substr(1, t[i + 2].text.size() - 2);
      if (!valid_fault_site(site)) {
        out->push_back({f.path, t[i].line, "fault-site-naming",
                        "fault site \"" + site + "\" must be module.sub.action "
                            "(three lowercase dot-separated segments)"});
        continue;
      }
      const auto [it, inserted] = seen.emplace(site, FirstSeen{f.rel, t[i].line});
      if (!inserted)
        out->push_back({f.path, t[i].line, "fault-site-naming",
                        "fault site \"" + site + "\" already registered at " +
                            it->second.rel + ":" + std::to_string(it->second.line) +
                            " — each site must appear exactly once"});
    }
  }
}

// metric-naming (cross-file): every CSQ_OBS_COUNT / CSQ_OBS_COUNT_N /
// CSQ_OBS_GAUGE_SET / CSQ_OBS_HIST / CSQ_OBS_SPAN name must be a literal
// "module.sub.metric" string (same grammar as fault sites), and each name
// must appear at exactly one call site repo-wide — counters, gauges,
// histograms and spans share one namespace, so the docs/observability.md
// catalog maps every name to a single source location. tests/ are exempt
// (unit tests register scratch metrics freely).
void rule_metric_naming(const std::vector<SourceFile>& files, std::vector<Finding>* out) {
  static const char* const kObsMacros[] = {"CSQ_OBS_COUNT", "CSQ_OBS_COUNT_N",
                                           "CSQ_OBS_GAUGE_SET", "CSQ_OBS_HIST",
                                           "CSQ_OBS_SPAN"};
  struct FirstSeen {
    std::string rel;
    int line = 0;
  };
  std::map<std::string, FirstSeen> seen;
  for (const SourceFile& f : files) {
    if (starts_with(f.rel, "tests/")) continue;
    const Tokens& t = f.tokens;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      bool is_obs = false;
      for (const char* m : kObsMacros)
        if (t[i].text == m) is_obs = true;
      if (!is_obs) continue;
      if (t[i + 1].text != "(") continue;
      if (t[i + 2].kind != TokKind::kString) {
        out->push_back({f.path, t[i].line, "metric-naming",
                        t[i].text + " name must be a string literal so the metric "
                            "catalogue is statically enumerable"});
        continue;
      }
      const std::string name = t[i + 2].text.substr(1, t[i + 2].text.size() - 2);
      if (!valid_fault_site(name)) {
        out->push_back({f.path, t[i].line, "metric-naming",
                        "metric name \"" + name + "\" must be module.sub.metric "
                            "(three lowercase dot-separated segments)"});
        continue;
      }
      const auto [it, inserted] = seen.emplace(name, FirstSeen{f.rel, t[i].line});
      if (!inserted)
        out->push_back({f.path, t[i].line, "metric-naming",
                        "metric name \"" + name + "\" already registered at " +
                            it->second.rel + ":" + std::to_string(it->second.line) +
                            " — each name must appear exactly once"});
    }
  }
}

// policy-registry (R19, cross-file): the simulator policy zoo is keyed by
// `enum class PolicyKind`; the registry contract is that every enumerator is
//   (a) printable  — handled by a `case PolicyKind::kX: return "Name";` in
//                    policy_name(),
//   (b) buildable  — handled by a case in make_policy(), and
//   (c) documented — its display name (the string policy_name() returns)
//                    appears in the docs/policies.md policy table
//                    (Config::policy_docs).
// A kind missing any leg is half-registered: the CLI/serve token would be
// accepted and then fail downstream, or serve an undocumented policy.
// Findings anchor to the enumerator's own line — the enum is where the next
// policy author is looking. Only src/ files are scanned, and the rule is
// inert when no PolicyKind enum is in the file set (fixture sets for other
// rules, forward declarations).
void rule_policy_registry(const std::vector<SourceFile>& files, const Config& config,
                          std::vector<Finding>* out) {
  struct Enumerator {
    std::string name;
    std::string path;  // file declaring the enum
    int line = 0;
  };
  std::vector<Enumerator> enumerators;
  for (const SourceFile& f : files) {
    if (!starts_with(f.rel, "src/")) continue;
    const Tokens& t = f.tokens;
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
      if (t[i].text != "enum" || t[i + 1].text != "class" ||
          t[i + 2].text != "PolicyKind")
        continue;
      // Skip the underlying-type clause; a `;` first means a forward
      // declaration (core/sweep.h carries one), not the definition.
      std::size_t j = i + 3;
      while (j < t.size() && t[j].text != "{" && t[j].text != ";") ++j;
      if (j >= t.size() || t[j].text != "{") continue;
      bool expect_name = true;
      for (++j; j < t.size() && t[j].text != "}"; ++j) {
        if (expect_name && t[j].kind == TokKind::kIdent) {
          enumerators.push_back({t[j].text, f.path, t[j].line});
          expect_name = false;
        } else if (t[j].text == ",") {
          expect_name = true;
        }
      }
    }
  }
  if (enumerators.empty()) return;

  // Collect, from the body of every definition of `fn` in src/, the
  // PolicyKind::kX enumerators it mentions — and for policy_name, the
  // display string of each `case PolicyKind::kX: return "Name";`.
  struct FnBody {
    std::set<std::string> kinds;
    std::map<std::string, std::string> display;  // kX -> "Name"
  };
  const auto collect = [&files](const char* fn) {
    FnBody body;
    for (const SourceFile& f : files) {
      if (!starts_with(f.rel, "src/")) continue;
      const Tokens& t = f.tokens;
      for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind != TokKind::kIdent || t[i].text != fn || t[i + 1].text != "(")
          continue;
        // Balance the parameter list, then require an opening `{`: a `;`
        // there is a declaration or a call site, not the definition.
        std::size_t j = i + 1;
        int parens = 0;
        for (; j < t.size(); ++j) {
          if (t[j].text == "(") ++parens;
          else if (t[j].text == ")" && --parens == 0) { ++j; break; }
        }
        if (j >= t.size() || t[j].text != "{") continue;
        int depth = 0;
        for (; j < t.size(); ++j) {
          if (t[j].text == "{") ++depth;
          else if (t[j].text == "}") {
            if (--depth == 0) break;
          } else if (t[j].kind == TokKind::kIdent && t[j].text == "PolicyKind" &&
                     j + 2 < t.size() && t[j + 1].text == "::" &&
                     t[j + 2].kind == TokKind::kIdent) {
            body.kinds.insert(t[j + 2].text);
            if (j + 5 < t.size() && t[j + 3].text == ":" && t[j + 4].text == "return" &&
                t[j + 5].kind == TokKind::kString)
              body.display[t[j + 2].text] =
                  t[j + 5].text.substr(1, t[j + 5].text.size() - 2);
          }
        }
      }
    }
    return body;
  };
  const FnBody names = collect("policy_name");
  const FnBody factory = collect("make_policy");

  for (const Enumerator& e : enumerators) {
    if (names.kinds.find(e.name) == names.kinds.end())
      out->push_back({e.path, e.line, "policy-registry",
                      "PolicyKind::" + e.name + " has no policy_name() case — every "
                          "policy needs a display name"});
    if (factory.kinds.find(e.name) == factory.kinds.end())
      out->push_back({e.path, e.line, "policy-registry",
                      "PolicyKind::" + e.name + " has no make_policy() case — the "
                          "registry cannot construct it"});
    const auto d = names.display.find(e.name);
    if (d != names.display.end() &&
        config.policy_docs.find(d->second) == std::string::npos)
      out->push_back({e.path, e.line, "policy-registry",
                      "policy \"" + d->second + "\" (PolicyKind::" + e.name +
                          ") is not documented in the " + config.policy_docs_name +
                          " policy table"});
  }
}

// serve-hygiene (R11): request-handler code (Config::serve_paths — the serve
// layer and the csq_serve binary) must degrade, never die, and never grow
// the request queue outside the bounded admit gate:
//   (a) no process-terminating calls (exit/abort/terminate/...): a handler
//       converts failures into taxonomy error responses;
//   (b) no push_back/emplace_back/push on an identifier that names a queue
//       ("queue"/"pending"): all enqueueing goes through the single admit
//       path that checks queue_depth and max_inflight_cost first (that one
//       site carries a csq-lint allow with its justification);
//   (c) every serve.* obs metric/span registered here must appear in the
//       serve metric catalog (docs/serving.md, passed in
//       Config::serve_metric_docs) so the serving dashboard surface and the
//       docs cannot drift apart.
void rule_serve_hygiene(const SourceFile& f, const Config& config,
                        std::vector<Finding>* out) {
  bool in_scope = false;
  for (const std::string& p : config.serve_paths)
    if (starts_with(f.rel, p)) in_scope = true;
  if (!in_scope) return;

  static const char* const kObsMacros[] = {"CSQ_OBS_COUNT", "CSQ_OBS_COUNT_N",
                                           "CSQ_OBS_GAUGE_SET", "CSQ_OBS_HIST",
                                           "CSQ_OBS_SPAN"};
  const auto names_queue = [](const std::string& ident) {
    return ident.find("queue") != std::string::npos ||
           ident.find("pending") != std::string::npos;
  };

  const Tokens& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    // (a) process-terminating calls.
    if (i + 1 < t.size() && t[i + 1].text == "(") {
      for (const std::string& banned : config.serve_banned_calls)
        if (t[i].text == banned)
          out->push_back({f.path, t[i].line, "serve-hygiene",
                          "request-handler code must not call " + banned +
                              "() — convert the failure into a taxonomy error "
                              "response instead"});
    }
    // (b) queue growth outside the admit gate.
    if (i + 3 < t.size() && names_queue(t[i].text) &&
        (t[i + 1].text == "." || t[i + 1].text == "->") &&
        (t[i + 2].text == "push_back" || t[i + 2].text == "emplace_back" ||
         t[i + 2].text == "push") &&
        t[i + 3].text == "(")
      out->push_back({f.path, t[i].line, "serve-hygiene",
                      "push onto request queue \"" + t[i].text +
                          "\" outside the bounded admit path — admission must "
                          "check queue depth and in-flight cost first"});
    // (c) serve.* metrics must be in the docs catalog.
    bool is_obs = false;
    for (const char* m : kObsMacros)
      if (t[i].text == m) is_obs = true;
    if (is_obs && i + 2 < t.size() && t[i + 1].text == "(" &&
        t[i + 2].kind == TokKind::kString) {
      const std::string name = t[i + 2].text.substr(1, t[i + 2].text.size() - 2);
      if (starts_with(name, "serve.") &&
          config.serve_metric_docs.find(name) == std::string::npos)
        out->push_back({f.path, t[i].line, "serve-hygiene",
                        "serve metric \"" + name + "\" is not documented in the " +
                            config.serve_metric_docs_name + " metric catalog"});
    }
  }
}

// journal-hygiene (R18): two halves of one flush-before-publish discipline.
//   (a) request-handler code (Config::journal_no_direct_io_paths) must not
//       do direct file I/O — stream types (ofstream/fstream/FILE) anywhere,
//       or a banned call (fopen/open/write/...) in call position. Durability
//       belongs to src/durable/, which owns the CRC framing and fsync
//       policy; a handler writing its own files creates state no recovery
//       path replays. Member calls (x.open, p->write) are not flagged: the
//       ban is on raw file I/O, not on API method names.
//   (b) in the durability layer itself (Config::journal_publish_paths), a
//       file that calls rename() — the atomic-publish step — must also call
//       fsync somewhere: renaming unsynced bytes can publish a torn
//       artifact after power loss.
void rule_journal_hygiene(const SourceFile& f, const Config& config,
                          std::vector<Finding>* out) {
  const auto in_any = [&](const std::vector<std::string>& prefixes) {
    for (const std::string& p : prefixes)
      if (starts_with(f.rel, p)) return true;
    return false;
  };
  const Tokens& t = f.tokens;
  if (in_any(config.journal_no_direct_io_paths)) {
    const auto stream_type = [](const std::string& ident) {
      return ident == "FILE" || (ident.size() >= 6 &&
                                 ident.compare(ident.size() - 6, 6, "stream") == 0 &&
                                 ident.find("string") == std::string::npos);
    };
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      for (const std::string& banned : config.journal_banned_io_calls) {
        if (t[i].text != banned) continue;
        const bool member_call =
            i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->");
        const bool call_like = i + 1 < t.size() && t[i + 1].text == "(";
        if (stream_type(banned) || (call_like && !member_call))
          out->push_back({f.path, t[i].line, "journal-hygiene",
                          "direct file I/O (" + banned +
                              ") in request-handler code — durability goes "
                              "through durable::Journal / the checkpoint API "
                              "(src/durable/), which own framing and fsync"});
      }
    }
  }
  if (in_any(config.journal_publish_paths)) {
    int rename_line = 0;
    bool has_fsync = false;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent || t[i + 1].text != "(") continue;
      if (t[i].text == "rename" && rename_line == 0) rename_line = t[i].line;
      if (t[i].text == "fsync") has_fsync = true;
    }
    if (rename_line != 0 && !has_fsync)
      out->push_back({f.path, rename_line, "journal-hygiene",
                      "rename() publish with no fsync in this file — flush "
                      "before publishing or a crash can expose a torn "
                      "artifact (tmp + fsync + rename)"});
  }
}

}  // namespace

namespace {

[[nodiscard]] bool covers(const Suppression& s, const Finding& fd) {
  return s.rule == fd.rule &&
         (fd.line == s.line || fd.line == s.line + 1 ||
          (s.alt_line != 0 && fd.line == s.alt_line));
}

}  // namespace

std::vector<Finding> run_rules(std::vector<SourceFile>& files, const Config& config,
                               IndexCache* cache) {
  std::vector<Finding> all;
  for (SourceFile& f : files) {
    std::vector<Finding> file_findings;
    std::vector<Suppression> sups = parse_suppressions(f, &all);  // malformed: unsuppressible
    rule_raw_throw(f, config, &file_findings);
    rule_no_float_eq(f, &file_findings);
    rule_nondeterminism(f, config, &file_findings);
    rule_hot_path_alloc(f, config, &file_findings);
    rule_hot_path_generic_mult(f, config, &file_findings);
    rule_header_hygiene(f, &file_findings);
    rule_catch_all(f, &file_findings);
    rule_banned_identifier(f, config, &file_findings);
    rule_serve_hygiene(f, config, &file_findings);
    rule_journal_hygiene(f, config, &file_findings);
    for (Finding& fd : file_findings) {
      bool suppressed = false;
      for (Suppression& s : sups)
        if (covers(s, fd)) {
          s.used = true;
          suppressed = true;
        }
      if (!suppressed) all.push_back(std::move(fd));
    }
  }
  // Cross-file pass: the token-level cross-TU rules, then the semantic rules
  // R13–R17 on the FileIndex layer (cache-aware: unchanged files reuse their
  // cached index). error-docs/throw-flow findings attach to headers at line
  // 1, so a suppression comment on the header's first line covers them.
  std::vector<Finding> cross;
  rule_error_docs(files, &cross);
  rule_fault_site_naming(files, &cross);
  rule_metric_naming(files, &cross);
  rule_policy_registry(files, config, &cross);
  {
    std::vector<FileIndex> owned(files.size());
    std::vector<const FileIndex*> indexes(files.size(), nullptr);
    for (std::size_t i = 0; i < files.size(); ++i) {
      const std::uint64_t hash = content_hash(files[i].content);
      const FileIndex* hit = cache != nullptr ? cache->lookup(files[i].rel, hash) : nullptr;
      if (hit != nullptr) {
        indexes[i] = hit;
      } else {
        owned[i] = build_file_index(files[i]);
        if (cache != nullptr) cache->store(owned[i]);
        indexes[i] = &owned[i];
      }
    }
    run_semantic_rules(files, indexes, config, &cross);
  }
  for (Finding& fd : cross) {
    bool suppressed = false;
    for (SourceFile& f : files) {
      if (f.path != fd.file) continue;
      std::vector<Suppression> sups = parse_suppressions(f, nullptr);
      for (Suppression& s : sups)
        if (covers(s, fd)) suppressed = true;
    }
    if (!suppressed) all.push_back(std::move(fd));
  }
  // Fill the repo-relative path on every finding (SARIF/baseline keys).
  {
    std::map<std::string, const std::string*> rel_of;
    for (const SourceFile& f : files) rel_of[f.path] = &f.rel;
    for (Finding& fd : all) {
      const auto it = rel_of.find(fd.file);
      fd.rel = it != rel_of.end() ? *it->second : fd.file;
    }
  }
  std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return all;
}

std::string suppression_selftest(bool* ok) {
  bool pass = true;
  std::ostringstream report;
  const auto check = [&](bool cond, const std::string& what) {
    report << (cond ? "ok:   " : "FAIL: ") << what << "\n";
    if (!cond) pass = false;
  };

  const std::string sample =
      "int a;  // csq-lint: allow(no-float-eq): fixture compares sentinels\n"
      "// csq-lint: allow(raw-throw): exercised by the selftest\n"
      "int b;\n"
      "// csq-lint: allow(raw-throw)\n"            // missing reason
      "// csq-lint: allow(not-a-rule): whatever\n"  // unknown rule
      "// csq-lint: disallow(raw-throw): nope\n"    // malformed verb
      "// see `csq-lint: allow(raw-throw): x` for the syntax\n"  // prose mention
      "// plain comment, no marker\n";
  SourceFile f = scan_source("<selftest>", "<selftest>", sample);
  std::vector<Finding> malformed;
  const std::vector<Suppression> sups = parse_suppressions(f, &malformed);

  check(sups.size() == 2, "two well-formed suppressions parsed (got " +
                              std::to_string(sups.size()) + ")");
  if (sups.size() == 2) {
    check(sups[0].rule == "no-float-eq" && sups[0].line == 1,
          "trailing-comment suppression binds to its own line");
    check(sups[0].reason == "fixture compares sentinels", "reason text captured");
    check(sups[1].rule == "raw-throw" && sups[1].line == 2,
          "own-line suppression recorded on the comment line");
  }
  check(malformed.size() == 3, "three malformed markers rejected, prose mention "
                                   "ignored (got " + std::to_string(malformed.size()) + ")");
  for (const Finding& m : malformed)
    check(m.rule == "suppression", "malformed marker reported under rule `suppression`");

  // Block-comment interiors, stacked groups, macro continuation lines.
  const std::string sample2 =
      "/* preamble prose\n"
      " * csq-lint: allow(raw-throw): fixture throws on purpose\n"
      " */\n"
      "int c;\n"
      "// csq-lint: allow(raw-throw) allow(no-float-eq): shared reason\n"
      "int d;\n"
      "#define MX(x) \\\n"
      "  do_thing(x); /* macro */ \\\n"
      "  more(x)  // csq-lint: allow(banned-identifier): macro fixture\n";
  SourceFile f2 = scan_source("<selftest2>", "<selftest2>", sample2);
  std::vector<Finding> malformed2;
  const std::vector<Suppression> sups2 = parse_suppressions(f2, &malformed2);
  check(malformed2.empty(), "second battery has no malformed markers");
  check(sups2.size() == 4, "block + stacked pair + macro-line markers parsed (got " +
                               std::to_string(sups2.size()) + ")");
  if (sups2.size() == 4) {
    check(sups2[0].rule == "raw-throw" && sups2[0].line == 2 && sups2[0].alt_line == 4,
          "block-comment marker binds to its interior line and the line after */");
    check(sups2[1].rule == "raw-throw" && sups2[2].rule == "no-float-eq" &&
              sups2[1].line == 5 && sups2[2].line == 5 &&
              sups2[1].reason == sups2[2].reason,
          "stacked allow(a) allow(b) yields both rules with the shared reason");
    check(sups2[3].rule == "banned-identifier" && sups2[3].line == 9,
          "marker on a macro continuation line binds to that physical line");
  }
  if (ok != nullptr) *ok = pass;
  return report.str();
}

}  // namespace csq::lint
