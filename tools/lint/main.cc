// csq_lint — command-line driver for the project lint pass (tools/lint/).
//
//   csq_lint [flags] [paths...]        lint .h/.cc files (default: src tools)
//   csq_lint --list-rules              print the rule catalog and exit
//   csq_lint --explain RULE            print the full rationale for one rule
//   csq_lint --selftest                suppression-parser + semantic-index self-tests
//
// Flags:
//   --root DIR        resolve paths against DIR (default: current directory)
//   --format=FMT      text (default) | json | sarif
//   --baseline FILE   grandfathered findings (default: ROOT/lint_baseline.json
//                     when present); exact-count matching, see tools/lint/sarif.h
//   --no-baseline     ignore any baseline file
//   --cache FILE      incremental semantic-index cache (loaded if present,
//                     rewritten after the run)
//
// Paths may be files or directories (walked recursively for *.h / *.cc).
// Findings print one per line as `file:line: [rule-id] message` (text), or
// as a JSON/SARIF document on stdout.
//
// Exit codes follow the csq_cli taxonomy: 0 clean, 2 invalid input (unknown
// flag, unreadable or missing path — the offending path is named), 6
// findings reported (the codebase failed verification against the project
// invariants).
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "callgraph.h"
#include "core/status.h"
#include "index.h"
#include "lint.h"
#include "sarif.h"

namespace {

namespace fs = std::filesystem;
using csq::lint::Finding;
using csq::lint::SourceFile;

// Exit code per taxonomy code, mirroring csq_cli (documented in the header
// comment above).
[[nodiscard]] int exit_code(csq::ErrorCode code) {
  switch (code) {
    case csq::ErrorCode::kOk: return 0;
    case csq::ErrorCode::kInvalidInput: return 2;
    case csq::ErrorCode::kUnstable: return 3;
    case csq::ErrorCode::kNotConverged: return 4;
    case csq::ErrorCode::kIllConditioned: return 5;
    case csq::ErrorCode::kVerificationFailed: return 6;
    case csq::ErrorCode::kDeadlineExceeded: return 7;
    case csq::ErrorCode::kCancelled: return 8;
    case csq::ErrorCode::kOverloaded: return 9;
    case csq::ErrorCode::kCorruptJournal: return 10;
    case csq::ErrorCode::kInternal: return 1;
  }
  return 1;
}

[[nodiscard]] bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

[[nodiscard]] std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw csq::InvalidInputError("csq_lint: cannot read " + p.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Repo-relative path with '/' separators, for rule scoping.
[[nodiscard]] std::string rel_path(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  std::string r = fs::relative(p, root, ec).generic_string();
  return ec ? p.generic_string() : r;
}

// Walk `target` collecting lintable sources. Every filesystem failure —
// missing path, unreadable directory, unreadable file — is an
// InvalidInputError naming the offending path; nothing is silently skipped.
void collect(const fs::path& target, const fs::path& root, std::vector<SourceFile>* out) {
  std::error_code ec;
  if (fs::is_directory(target, ec)) {
    std::vector<fs::path> paths;
    fs::recursive_directory_iterator it(target, ec);
    if (ec)
      throw csq::InvalidInputError("csq_lint: cannot open directory " + target.string() +
                                   ": " + ec.message());
    for (fs::recursive_directory_iterator end; it != end; it.increment(ec)) {
      if (ec)
        throw csq::InvalidInputError("csq_lint: cannot walk " + target.string() + ": " +
                                     ec.message());
      if (it->is_regular_file(ec) && lintable(it->path())) paths.push_back(it->path());
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path& p : paths)
      out->push_back(csq::lint::scan_source(p.string(), rel_path(p, root), slurp(p)));
    return;
  }
  if (fs::is_regular_file(target, ec)) {
    out->push_back(
        csq::lint::scan_source(target.string(), rel_path(target, root), slurp(target)));
    return;
  }
  throw csq::InvalidInputError("csq_lint: no such file or directory: " + target.string());
}

int run(int argc, char** argv) {
  fs::path root = fs::current_path();
  bool root_given = false;
  std::string format = "text";
  std::string baseline_flag;  // explicit --baseline FILE
  bool no_baseline = false;
  std::string cache_file;
  std::vector<std::string> targets;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const csq::lint::RuleInfo& r : csq::lint::rules())
        std::cout << r.id << "\t" << r.summary << "\n";
      return 0;
    }
    if (arg == "--explain") {
      if (i + 1 >= argc) throw csq::InvalidInputError("csq_lint: --explain needs a rule id");
      const std::string id = argv[++i];
      for (const csq::lint::RuleInfo& r : csq::lint::rules())
        if (id == r.id) {
          std::cout << r.id << " — " << r.summary << "\n\n" << r.detail << "\n";
          return 0;
        }
      throw csq::InvalidInputError("csq_lint: unknown rule `" + id +
                                   "` (see --list-rules)");
    }
    if (arg == "--selftest") {
      bool sup_ok = false;
      bool idx_ok = false;
      std::cout << "--- suppression parser ---\n"
                << csq::lint::suppression_selftest(&sup_ok)
                << "--- semantic index / call graph ---\n"
                << csq::lint::index_selftest(&idx_ok);
      return (sup_ok && idx_ok) ? 0 : exit_code(csq::ErrorCode::kVerificationFailed);
    }
    if (arg == "--root") {
      if (i + 1 >= argc) throw csq::InvalidInputError("csq_lint: --root needs a directory");
      root = fs::path(argv[++i]);
      root_given = true;
      continue;
    }
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json" && format != "sarif")
        throw csq::InvalidInputError("csq_lint: unknown format `" + format +
                                     "` (text|json|sarif)");
      continue;
    }
    if (arg == "--baseline") {
      if (i + 1 >= argc) throw csq::InvalidInputError("csq_lint: --baseline needs a file");
      baseline_flag = argv[++i];
      continue;
    }
    if (arg == "--no-baseline") {
      no_baseline = true;
      continue;
    }
    if (arg == "--cache") {
      if (i + 1 >= argc) throw csq::InvalidInputError("csq_lint: --cache needs a file");
      cache_file = argv[++i];
      continue;
    }
    if (arg.rfind("--", 0) == 0)
      throw csq::InvalidInputError("csq_lint: unknown flag " + arg);
    targets.push_back(arg);
  }
  if (targets.empty()) targets = {"src", "tools"};

  {
    std::error_code ec;
    if (root_given && !fs::is_directory(root, ec))
      throw csq::InvalidInputError("csq_lint: --root is not a directory: " + root.string());
  }

  std::vector<SourceFile> files;
  for (const std::string& t : targets) collect(root / t, root, &files);

  // serve-hygiene (R11): the serve metric catalog the serve.* names are
  // checked against. A missing catalog file leaves the text empty, which
  // flags every serve.* metric — the catalog is part of the contract.
  csq::lint::Config config;
  const fs::path serve_docs = root / config.serve_metric_docs_name;
  std::error_code docs_ec;
  if (fs::is_regular_file(serve_docs, docs_ec)) config.serve_metric_docs = slurp(serve_docs);

  // policy-registry (R19): the policy catalog the PolicyKind display names
  // are checked against — same missing-file contract as the serve catalog.
  const fs::path policy_docs = root / config.policy_docs_name;
  if (fs::is_regular_file(policy_docs, docs_ec)) config.policy_docs = slurp(policy_docs);

  // Incremental semantic-index cache: tolerant load (a stale or foreign
  // file is simply rebuilt), best-effort save.
  csq::lint::IndexCache cache;
  if (!cache_file.empty()) {
    std::error_code ec;
    if (fs::is_regular_file(cache_file, ec)) (void)cache.load(slurp(cache_file));
  }

  std::vector<Finding> findings = csq::lint::run_rules(
      files, config, cache_file.empty() ? nullptr : &cache);

  if (!cache_file.empty()) {
    std::ofstream out(cache_file, std::ios::binary | std::ios::trunc);
    if (out)
      out << cache.serialize();
    else
      std::cerr << "csq_lint: warning: cannot write cache " << cache_file << "\n";
  }

  // Baseline: an explicit --baseline FILE must exist; the default
  // ROOT/lint_baseline.json applies only when present.
  if (!no_baseline) {
    fs::path baseline_path = baseline_flag.empty() ? root / "lint_baseline.json"
                                                   : fs::path(baseline_flag);
    std::error_code ec;
    const bool exists = fs::is_regular_file(baseline_path, ec);
    if (!baseline_flag.empty() && !exists)
      throw csq::InvalidInputError("csq_lint: baseline not found: " +
                                   baseline_path.string());
    if (exists) {
      std::vector<csq::lint::BaselineEntry> entries;
      std::string error;
      if (!csq::lint::load_baseline(slurp(baseline_path), &entries, &error))
        throw csq::InvalidInputError("csq_lint: bad baseline " + baseline_path.string() +
                                     ": " + error);
      findings = csq::lint::apply_baseline(std::move(findings), entries,
                                           rel_path(baseline_path, root));
    }
  }

  if (format == "json") {
    std::cout << csq::lint::to_json(findings) << "\n";
  } else if (format == "sarif") {
    std::cout << csq::lint::to_sarif(findings) << "\n";
  } else {
    for (const Finding& f : findings) std::cout << csq::lint::format_finding(f) << "\n";
  }
  if (findings.empty()) {
    std::cerr << "csq_lint: " << files.size() << " files clean\n";
    return 0;
  }
  std::cerr << "csq_lint: " << findings.size() << " finding(s) in " << files.size()
            << " files\n";
  return exit_code(csq::ErrorCode::kVerificationFailed);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const csq::Error& e) {
    std::cerr << e.status().message << "\n";
    return exit_code(e.status().code);
  } catch (const std::exception& e) {
    std::cerr << "csq_lint: " << e.what() << "\n";
    return 1;
  }
}
