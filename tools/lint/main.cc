// csq_lint — command-line driver for the project lint pass (tools/lint/).
//
//   csq_lint [--root DIR] [paths...]   lint .h/.cc files (default: src tools)
//   csq_lint --list-rules              print the rule catalog and exit
//   csq_lint --selftest                run the suppression-parser self-test
//
// Paths are taken relative to --root (default: current directory); each may
// be a file or a directory (walked recursively for *.h / *.cc). Findings
// print one per line as `file:line: [rule-id] message`.
//
// Exit codes follow the csq_cli taxonomy: 0 clean, 2 invalid input (unknown
// flag, unreadable path), 6 findings reported (the codebase failed
// verification against the project invariants).
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/status.h"
#include "lint.h"

namespace {

namespace fs = std::filesystem;
using csq::lint::Finding;
using csq::lint::SourceFile;

// Exit code per taxonomy code, mirroring csq_cli (documented in the header
// comment above).
[[nodiscard]] int exit_code(csq::ErrorCode code) {
  switch (code) {
    case csq::ErrorCode::kOk: return 0;
    case csq::ErrorCode::kInvalidInput: return 2;
    case csq::ErrorCode::kUnstable: return 3;
    case csq::ErrorCode::kNotConverged: return 4;
    case csq::ErrorCode::kIllConditioned: return 5;
    case csq::ErrorCode::kVerificationFailed: return 6;
    case csq::ErrorCode::kDeadlineExceeded: return 7;
    case csq::ErrorCode::kCancelled: return 8;
    case csq::ErrorCode::kOverloaded: return 9;
    case csq::ErrorCode::kInternal: return 1;
  }
  return 1;
}

[[nodiscard]] bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

[[nodiscard]] std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw csq::InvalidInputError("csq_lint: cannot read " + p.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Repo-relative path with '/' separators, for rule scoping.
[[nodiscard]] std::string rel_path(const fs::path& p, const fs::path& root) {
  std::string r = fs::relative(p, root).generic_string();
  return r;
}

void collect(const fs::path& target, const fs::path& root, std::vector<SourceFile>* out) {
  if (fs::is_directory(target)) {
    std::vector<fs::path> paths;
    for (const auto& entry : fs::recursive_directory_iterator(target))
      if (entry.is_regular_file() && lintable(entry.path())) paths.push_back(entry.path());
    std::sort(paths.begin(), paths.end());
    for (const fs::path& p : paths)
      out->push_back(csq::lint::scan_source(p.string(), rel_path(p, root), slurp(p)));
    return;
  }
  if (fs::is_regular_file(target)) {
    out->push_back(
        csq::lint::scan_source(target.string(), rel_path(target, root), slurp(target)));
    return;
  }
  throw csq::InvalidInputError("csq_lint: no such file or directory: " + target.string());
}

int run(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> targets;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const csq::lint::RuleInfo& r : csq::lint::rules())
        std::cout << r.id << "\t" << r.summary << "\n";
      return 0;
    }
    if (arg == "--selftest") {
      bool ok = false;
      std::cout << csq::lint::suppression_selftest(&ok);
      return ok ? 0 : exit_code(csq::ErrorCode::kVerificationFailed);
    }
    if (arg == "--root") {
      if (i + 1 >= argc) throw csq::InvalidInputError("csq_lint: --root needs a directory");
      root = fs::path(argv[++i]);
      continue;
    }
    if (arg.rfind("--", 0) == 0)
      throw csq::InvalidInputError("csq_lint: unknown flag " + arg);
    targets.push_back(arg);
  }
  if (targets.empty()) targets = {"src", "tools"};

  std::vector<SourceFile> files;
  for (const std::string& t : targets) collect(root / t, root, &files);

  // serve-hygiene (R11): the serve metric catalog the serve.* names are
  // checked against. A missing catalog file leaves the text empty, which
  // flags every serve.* metric — the catalog is part of the contract.
  csq::lint::Config config;
  const fs::path serve_docs = root / config.serve_metric_docs_name;
  if (fs::is_regular_file(serve_docs)) config.serve_metric_docs = slurp(serve_docs);

  const std::vector<Finding> findings = csq::lint::run_rules(files, config);
  for (const Finding& f : findings) std::cout << csq::lint::format_finding(f) << "\n";
  if (findings.empty()) {
    std::cerr << "csq_lint: " << files.size() << " files clean\n";
    return 0;
  }
  std::cerr << "csq_lint: " << findings.size() << " finding(s) in " << files.size()
            << " files\n";
  return exit_code(csq::ErrorCode::kVerificationFailed);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const csq::Error& e) {
    std::cerr << e.status().message << "\n";
    return exit_code(e.status().code);
  } catch (const std::exception& e) {
    std::cerr << "csq_lint: " << e.what() << "\n";
    return 1;
  }
}
