// Semantic index for csq_lint — the layer between the tokenizer (lint.h)
// and the flow-aware rules R13–R17 (callgraph.h).
//
// For each SourceFile the extractor computes a FileIndex: function/method
// definition extents (with namespace/class scope chains recovered from a
// brace-matched scope stack), the call sites, throw sites, loops, try/catch
// regions and atomic memory_order sites inside each body, plus the file's
// `#include` targets and the module it belongs to (`src/<module>/...`).
// Everything is best-effort token-level analysis: malformed input degrades
// to fewer facts, never to a crash.
//
// The index is the unit of incremental caching: a FileIndex serializes to a
// line-oriented text record keyed by an FNV-1a hash of the file content, so
// `csq_lint --cache FILE` reuses the extraction for unchanged files and a
// full-tree run stays in the tens of milliseconds. The token stream itself
// is not cached (the file-local rules R1–R12 re-lex cheaply); only the
// semantic facts the cross-TU rules consume are.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lint.h"

namespace csq::lint {

// One `#include` directive. `target` is the spelled path between the
// delimiters; resolution against the scanned file set happens in the
// repo-wide layer (callgraph.cc), not here.
struct IncludeRef {
  int line = 0;
  std::string target;
  bool system = false;  // <...> rather than "..."
};

// One call site inside a function body. `name` is the last identifier
// component (`solve` for `qbd::solve(...)` and for `x.solve(...)`).
struct CallRef {
  int line = 0;
  std::size_t tok = 0;        // token index of the name, for region tests
  std::string name;
  std::string qualifier;      // "qbd" for qbd::solve, "" for bare/method calls
  bool is_method = false;     // preceded by `.` or `->`
};

// One `throw <Type>(...)` site. `type` is the last component of the thrown
// type; bare rethrows (`throw;`) are not recorded.
struct ThrowRef {
  int line = 0;
  std::size_t tok = 0;
  std::string type;
};

// A for/while/do loop inside a function body. The token extent covers the
// *body* (header excluded), matching the R4 loop scanner's convention.
struct LoopRef {
  int line = 0;               // line of the loop keyword
  std::size_t body_begin = 0;  // first token of the body
  std::size_t body_end = 0;    // last token of the body (inclusive)
};

// A try block and the union of what its catch clauses handle. `catches_all`
// is set for `catch (...)` and for base-class catches (`std::exception`,
// `csq::Error`) that swallow every taxonomy type.
struct TryRegion {
  std::size_t body_begin = 0;
  std::size_t body_end = 0;    // inclusive, try block only (not the catches)
  bool catches_all = false;
  std::vector<std::string> caught;  // taxonomy last-components caught by type
};

// One explicit std::memory_order_* argument.
struct AtomicOrderRef {
  int line = 0;
  std::string order;          // "relaxed", "acquire", ..., "seq_cst"
  bool justified = false;     // rationale comment nearby (see index.cc)
  bool in_loop = false;       // inside a loop body extent
};

// One function (or method) definition.
struct FunctionDecl {
  std::string name;            // unqualified: "solve"
  std::string scope;           // enclosing scopes joined: "csq::qbd" / "csq::linalg::Lu"
  std::vector<std::string> explicit_quals;  // out-of-line quals: {"Lu"} for Lu::solve
  int line = 0;
  int end_line = 0;
  std::size_t body_begin = 0;  // token index of the opening `{`
  std::size_t body_end = 0;    // token index of the closing `}`
  bool is_method = false;      // defined in a class scope or via Class:: quals
  bool internal = false;       // anonymous namespace or `static` — not API
  bool polls_budget = false;   // body polls interrupted()/expired()/cancelled()/.check()
  std::vector<std::size_t> poll_toks;  // token indices of those poll sites
  bool allocates = false;      // body has `new` or a configured allocator call
  bool has_order_rationale = false;  // ordering-rationale comment in/above the body
  std::vector<CallRef> calls;
  std::vector<ThrowRef> throws;
  std::vector<LoopRef> loops;
  std::vector<TryRegion> tries;
  std::vector<AtomicOrderRef> atomics;
};

// Everything the cross-TU rules need to know about one file.
struct FileIndex {
  std::string rel;             // repo-relative path, '/'-separated
  std::uint64_t content_hash = 0;
  bool is_header = false;
  std::string module;          // "core", "qbd", ..., "tools"; "" for src/csq.h
  std::vector<std::string> namespaces;  // namespace names opened in this file
  std::vector<IncludeRef> includes;
  std::vector<FunctionDecl> functions;
};

// Call names that count as heap allocation for R15 (in addition to the
// `new` keyword). Kept here so the extractor and the docs agree.
[[nodiscard]] const std::vector<std::string>& allocator_call_names();

// FNV-1a over the raw content; the cache key.
[[nodiscard]] std::uint64_t content_hash(const std::string& content);

// Build the semantic index for one scanned file. `module` is derived from
// `file.rel` (`src/<m>/...` → m, `tools/...` → "tools").
[[nodiscard]] FileIndex build_file_index(const SourceFile& file);

// --- Incremental cache -----------------------------------------------------
//
// A cache maps rel path → serialized FileIndex + content hash. Loading is
// tolerant: a version mismatch or malformed record drops the cache (the
// extraction is redone), it never fails the run.

class IndexCache {
 public:
  // Returns the cached index for (rel, hash), or nullptr on miss.
  [[nodiscard]] const FileIndex* lookup(const std::string& rel,
                                        std::uint64_t hash) const;
  void store(FileIndex index);

  // Serialize the whole cache / restore it. `load` returns false (leaving
  // the cache empty) on version or format mismatch.
  [[nodiscard]] std::string serialize() const;
  bool load(const std::string& text);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, FileIndex> entries_;
};

// Round-trip helpers (exposed for the selftest / unit tests).
[[nodiscard]] std::string serialize_file_index(const FileIndex& index);
[[nodiscard]] bool deserialize_file_index(const std::string& record, FileIndex* out);

}  // namespace csq::lint
