#include "callgraph.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <utility>

namespace csq::lint {

namespace {

[[nodiscard]] bool starts_with(const std::string& s, const std::string& p) {
  return s.size() >= p.size() && s.compare(0, p.size(), p) == 0;
}

[[nodiscard]] bool ends_with(const std::string& s, const std::string& p) {
  return s.size() >= p.size() && s.compare(s.size() - p.size(), p.size(), p) == 0;
}

[[nodiscard]] std::vector<std::string> split_scope(const std::string& scope) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= scope.size()) {
    const std::size_t end = scope.find("::", begin);
    if (end == std::string::npos) {
      if (begin < scope.size()) parts.push_back(scope.substr(begin));
      break;
    }
    if (end > begin) parts.push_back(scope.substr(begin, end - begin));
    begin = end + 2;
  }
  return parts;
}

[[nodiscard]] bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

[[nodiscard]] bool in_region(std::size_t tok, std::size_t begin, std::size_t end) {
  return tok >= begin && tok <= end;
}

// Taxonomy types R13 tracks: the allowed throw set minus InternalError
// (invariant breaches are bugs, not API contract — same carve-out as R6).
[[nodiscard]] bool is_taxonomy_type(const std::string& type, const Config& cfg) {
  return type != "InternalError" && ends_with(type, "Error") &&
         contains(cfg.allowed_throw_types, type);
}

// Remove from `set` what the try regions covering `tok` catch.
void filter_caught(const FunctionDecl& f, std::size_t tok, std::set<std::string>* set) {
  for (const TryRegion& tr : f.tries) {
    if (!in_region(tok, tr.body_begin, tr.body_end)) continue;
    if (tr.catches_all) {
      set->clear();
      return;
    }
    for (const std::string& c : tr.caught) set->erase(c);
  }
}

}  // namespace

std::size_t RepoIndex::fn_id(const FnRef& r) const { return offsets_[r.file] + r.fn; }

RepoIndex RepoIndex::build(const std::vector<const FileIndex*>& files,
                           const Config& config) {
  RepoIndex idx;
  idx.files_ = files;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    idx.offsets_.push_back(idx.fn_refs_.size());
    for (const std::string& ns : files[fi]->namespaces) idx.namespaces_.insert(ns);
    for (std::size_t k = 0; k < files[fi]->functions.size(); ++k)
      idx.fn_refs_.push_back({fi, k});
  }
  for (std::size_t id = 0; id < idx.fn_refs_.size(); ++id)
    idx.by_name_[idx.fn(idx.fn_refs_[id]).name].push_back(id);
  idx.finalize_methods();
  idx.resolve_all(config);
  idx.run_fixpoints(config);
  idx.build_include_graph();
  return idx;
}

void RepoIndex::finalize_methods() {
  // A definition is a method if it sits in a class scope, or if it is an
  // out-of-line `Class::f` whose last explicit qualifier is not a known
  // namespace name anywhere in the repo.
  method_.assign(fn_refs_.size(), false);
  for (std::size_t id = 0; id < fn_refs_.size(); ++id) {
    const FunctionDecl& f = fn(fn_refs_[id]);
    bool m = f.is_method;
    if (!m && !f.explicit_quals.empty() && !is_namespace(f.explicit_quals.back())) m = true;
    method_[id] = m;
  }
}

std::vector<FnRef> RepoIndex::resolve(const CallRef& call, const FnRef& caller) const {
  std::vector<FnRef> out;
  const auto it = by_name_.find(call.name);
  if (it == by_name_.end()) return out;
  const FunctionDecl& caller_fn = fn(caller);
  const std::size_t caller_file = caller.file;
  // C++ unqualified lookup stops at the innermost scope that declares the
  // name: a sibling method of the caller's own class shadows every
  // namespace-scope function of the same name. Detect that case first so
  // `solve(col)` inside Lu::solve never picks up free qbd::solve.
  bool has_sibling_method = false;
  if (!call.is_method && call.qualifier.empty() && !caller_fn.scope.empty())
    for (std::size_t id : it->second) {
      const FnRef& ref = fn_refs_[id];
      if (method_[id] && fn(ref).scope == caller_fn.scope &&
          (!fn(ref).internal || ref.file == caller_file))
        has_sibling_method = true;
    }
  for (std::size_t id : it->second) {
    const FnRef& ref = fn_refs_[id];
    const FunctionDecl& cand = fn(ref);
    if (cand.internal && ref.file != caller_file) continue;
    if (call.is_method) {
      if (!method_[id]) continue;
    } else if (call.qualifier.empty()) {
      // Unqualified: free functions, plus sibling methods of the caller's
      // own class (`helper()` inside another method of the same scope) —
      // and when a sibling exists it shadows the free functions entirely.
      if (method_[id] && cand.scope != caller_fn.scope) continue;
      if (has_sibling_method && !method_[id]) continue;
    } else {
      // `Q::f(...)`: Q must appear in the candidate's scope chain or its
      // explicit qualifiers (matches both namespaces and class statics).
      if (call.qualifier == "std") continue;  // never repo code
      const std::vector<std::string> scope = split_scope(cand.scope);
      if (!contains(scope, call.qualifier) &&
          !contains(cand.explicit_quals, call.qualifier))
        continue;
    }
    out.push_back(ref);
  }
  return out;
}

void RepoIndex::resolve_all(const Config&) {
  resolved_.resize(fn_refs_.size());
  for (std::size_t id = 0; id < fn_refs_.size(); ++id) {
    const FnRef& ref = fn_refs_[id];
    const FunctionDecl& f = fn(ref);
    resolved_[id].resize(f.calls.size());
    for (std::size_t c = 0; c < f.calls.size(); ++c)
      for (const FnRef& callee : resolve(f.calls[c], ref))
        resolved_[id][c].push_back(fn_id(callee));
  }
}

void RepoIndex::run_fixpoints(const Config& config) {
  const std::size_t n = fn_refs_.size();
  escapes_.assign(n, {});
  polls_.assign(n, false);
  allocates_.assign(n, false);
  reaches_kernel_.assign(n, false);

  // Seeds.
  for (std::size_t id = 0; id < n; ++id) {
    const FnRef& ref = fn_refs_[id];
    const FunctionDecl& f = fn(ref);
    polls_[id] = f.polls_budget;
    allocates_[id] = f.allocates;
    if (contains(config.iterative_kernels, f.name) &&
        contains(config.iterative_kernel_modules, files_[ref.file]->module))
      reaches_kernel_[id] = true;
    for (const ThrowRef& th : f.throws) {
      if (!is_taxonomy_type(th.type, config)) continue;
      std::set<std::string> one = {th.type};
      filter_caught(f, th.tok, &one);
      escapes_[id].insert(one.begin(), one.end());
    }
  }

  // Propagate through resolved calls until stable. Unresolved calls
  // contribute nothing (see the conservatism note in callgraph.h).
  bool changed = true;
  int guard = 0;
  while (changed && ++guard < 64) {
    changed = false;
    for (std::size_t id = 0; id < n; ++id) {
      const FunctionDecl& f = fn(fn_refs_[id]);
      for (std::size_t c = 0; c < f.calls.size(); ++c) {
        for (std::size_t callee : resolved_[id][c]) {
          if (polls_[callee] && !polls_[id]) {
            polls_[id] = true;
            changed = true;
          }
          if (allocates_[callee] && !allocates_[id]) {
            allocates_[id] = true;
            changed = true;
          }
          if (reaches_kernel_[callee] && !reaches_kernel_[id]) {
            reaches_kernel_[id] = true;
            changed = true;
          }
          if (!escapes_[callee].empty()) {
            std::set<std::string> in = escapes_[callee];
            filter_caught(f, f.calls[c].tok, &in);
            for (const std::string& e : in)
              if (escapes_[id].insert(e).second) changed = true;
          }
        }
      }
    }
  }
}

void RepoIndex::build_include_graph() {
  std::map<std::string, std::size_t> by_rel;
  for (std::size_t fi = 0; fi < files_.size(); ++fi) by_rel[files_[fi]->rel] = fi;

  include_edges_.assign(files_.size(), {});
  for (std::size_t fi = 0; fi < files_.size(); ++fi) {
    const std::string& rel = files_[fi]->rel;
    const std::size_t slash = rel.rfind('/');
    const std::string dir = slash == std::string::npos ? "" : rel.substr(0, slash + 1);
    for (const IncludeRef& inc : files_[fi]->includes) {
      if (inc.system) continue;
      // Quoted includes resolve against src/ (the repo include root) or the
      // including file's own directory.
      std::size_t target = files_.size();
      for (const std::string& cand : {"src/" + inc.target, dir + inc.target, inc.target}) {
        const auto it = by_rel.find(cand);
        if (it != by_rel.end()) {
          target = it->second;
          break;
        }
      }
      if (target < files_.size()) include_edges_[fi].push_back(target);
    }
  }

  // Tarjan SCC over the include edges; components of size > 1 (or with a
  // self-loop) are cycles.
  const std::size_t n = files_.size();
  std::vector<int> index(n, -1);
  std::vector<int> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  int next = 0;

  struct Frame {
    std::size_t v;
    std::size_t edge;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] >= 0) continue;
    std::vector<Frame> call_stack = {{root, 0}};
    index[root] = low[root] = next++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!call_stack.empty()) {
      Frame& fr = call_stack.back();
      if (fr.edge < include_edges_[fr.v].size()) {
        const std::size_t w = include_edges_[fr.v][fr.edge++];
        if (index[w] < 0) {
          index[w] = low[w] = next++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          low[fr.v] = std::min(low[fr.v], index[w]);
        }
      } else {
        if (low[fr.v] == index[fr.v]) {
          std::vector<std::size_t> comp;
          while (true) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp.push_back(w);
            if (w == fr.v) break;
          }
          bool self_loop = false;
          for (const std::size_t w : include_edges_[fr.v])
            if (w == fr.v) self_loop = true;
          if (comp.size() > 1 || self_loop) {
            std::sort(comp.begin(), comp.end(), [&](std::size_t a, std::size_t b) {
              return files_[a]->rel < files_[b]->rel;
            });
            include_cycles_.push_back(std::move(comp));
          }
        }
        const std::size_t v = fr.v;
        call_stack.pop_back();
        if (!call_stack.empty())
          low[call_stack.back().v] = std::min(low[call_stack.back().v], low[v]);
      }
    }
  }
  std::sort(include_cycles_.begin(), include_cycles_.end(),
            [&](const std::vector<std::size_t>& a, const std::vector<std::size_t>& b) {
              return files_[a.front()]->rel < files_[b.front()]->rel;
            });
}

// --- Rules ------------------------------------------------------------------

namespace {

// R13 throw-flow: for each src/ header, compare the `Throws csq::X` contract
// against the taxonomy errors that can actually escape the public functions
// of the header and its implementation file. Undocumented escapes that R6
// already catches (direct throws in the .cc) are left to R6; R13 adds what
// only the call graph can see, and flags stale documented entries.
void rule_throw_flow(const std::vector<SourceFile>& files, const RepoIndex& repo,
                     const Config& cfg, std::vector<Finding>* out) {
  std::map<std::string, std::vector<std::size_t>> by_stem;  // src/ stems
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const std::string& rel = files[fi].rel;
    if (!starts_with(rel, "src/")) continue;
    by_stem[rel.substr(0, rel.rfind('.'))].push_back(fi);
  }
  for (const auto& [stem, members] : by_stem) {
    const SourceFile* header = nullptr;
    std::size_t header_fi = 0;
    for (std::size_t fi : members)
      if (files[fi].is_header) {
        header = &files[fi];
        header_fi = fi;
      }
    if (header == nullptr) continue;

    // Computed reality over the pair: errors escaping any public function,
    // split into "thrown directly somewhere in the pair" (R6 territory) and
    // "only arrives through calls" (R13 territory).
    std::set<std::string> escaping;
    std::set<std::string> direct;
    std::map<std::string, std::string> witness;  // error -> function name
    for (std::size_t fi : members) {
      const FileIndex* fx = repo.files()[fi];
      for (std::size_t k = 0; k < fx->functions.size(); ++k) {
        const FunctionDecl& f = fx->functions[k];
        for (const ThrowRef& th : f.throws)
          if (is_taxonomy_type(th.type, cfg)) direct.insert(th.type);
        if (f.internal || f.name == "main") continue;
        const std::size_t id = repo.fn_id({fi, k});
        for (const std::string& e : repo.escapes(id)) {
          escaping.insert(e);
          witness.emplace(e, f.name);
        }
      }
    }

    // Undocumented: escapes the header never mentions, net of R6's direct
    // set so one missing doc line yields one finding, not two.
    for (const std::string& e : escaping) {
      if (direct.count(e) != 0) continue;
      if (header->content.find(e) != std::string::npos) continue;
      out->push_back({header->path, 1, "throw-flow",
                      "csq::" + e + " can escape " + witness[e] +
                          "() via its callees but is not documented here — add a "
                          "`Throws csq::" + e + "` note to the API comment"});
    }

    // Stale: explicit `Throws csq::X` entries no computed or direct throw
    // backs up. InternalError entries are never required, never stale.
    const std::string& text = header->content;
    const std::string tag = "Throws csq::";
    std::size_t pos = 0;
    while ((pos = text.find(tag, pos)) != std::string::npos) {
      std::size_t e = pos + tag.size();
      std::string type;
      while (e < text.size() &&
             ((std::isalnum(static_cast<unsigned char>(text[e])) != 0) || text[e] == '_'))
        type += text[e++];
      const int line =
          1 + static_cast<int>(std::count(text.begin(), text.begin() + static_cast<long>(pos), '\n'));
      if (!type.empty() && type != "InternalError" && is_taxonomy_type(type, cfg) &&
          escaping.count(type) == 0 && direct.count(type) == 0)
        out->push_back({header->path, line, "throw-flow",
                        "stale contract: `Throws csq::" + type + "` but csq::" + type +
                            " is neither thrown here nor able to escape through the "
                            "call graph — drop the entry or restore the throw"});
      pos = e;
    }
    (void)header_fi;
  }
}

// R14 deadline-poll: a loop in the solver/simulator directories whose body
// reaches an iterative kernel must poll the RunBudget/CancelToken — either
// in the loop itself or inside the (transitively) called kernel. Unresolved
// calls never count as polling, so a loop is only accepted on evidence.
void rule_deadline_poll(const std::vector<SourceFile>& files, const RepoIndex& repo,
                        const Config& cfg, std::vector<Finding>* out) {
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    bool in_scope = false;
    for (const std::string& d : cfg.deadline_poll_dirs)
      if (starts_with(files[fi].rel, d)) in_scope = true;
    if (!in_scope) continue;
    const FileIndex* fx = repo.files()[fi];
    for (std::size_t k = 0; k < fx->functions.size(); ++k) {
      const FunctionDecl& f = fx->functions[k];
      const std::size_t id = repo.fn_id({fi, k});
      for (const LoopRef& loop : f.loops) {
        bool polls_in_loop = false;
        for (std::size_t p : f.poll_toks)
          if (in_region(p, loop.body_begin, loop.body_end)) polls_in_loop = true;
        if (polls_in_loop) continue;
        // First kernel-reaching call whose candidates do not themselves poll.
        for (std::size_t c = 0; c < f.calls.size(); ++c) {
          const CallRef& call = f.calls[c];
          if (!in_region(call.tok, loop.body_begin, loop.body_end)) continue;
          bool reaches = false;
          bool callee_polls = false;
          for (std::size_t callee : repo.resolved(id, c)) {
            if (repo.reaches_kernel(callee)) reaches = true;
            if (repo.polls(callee)) callee_polls = true;
          }
          if (reaches && !callee_polls) {
            out->push_back({files[fi].path, call.line, "deadline-poll",
                            "loop reaches the iterative kernel via " + call.name +
                                "() but neither the loop nor the callee polls the "
                                "RunBudget/CancelToken — add a budget.check()/"
                                "interrupted() poll"});
            break;  // one finding per loop
          }
        }
      }
    }
  }
}

// R15 hot-path-alloc-transitive: calls inside hot-file loops that resolve
// to a callee that (transitively) allocates. Unresolved calls are exempt —
// the tracked allocators live in repo code the index can see.
void rule_hot_alloc_transitive(const std::vector<SourceFile>& files, const RepoIndex& repo,
                               const Config& cfg, std::vector<Finding>* out) {
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    bool hot = false;
    for (const std::string& h : cfg.hot_files)
      if (ends_with(files[fi].rel, h)) hot = true;
    if (!hot) continue;
    const FileIndex* fx = repo.files()[fi];
    for (std::size_t k = 0; k < fx->functions.size(); ++k) {
      const FunctionDecl& f = fx->functions[k];
      const std::size_t id = repo.fn_id({fi, k});
      std::set<int> reported_lines;
      for (const LoopRef& loop : f.loops) {
        for (std::size_t c = 0; c < f.calls.size(); ++c) {
          const CallRef& call = f.calls[c];
          if (!in_region(call.tok, loop.body_begin, loop.body_end)) continue;
          // Deadline polls (budget.interrupted()/check(), token.cancelled())
          // are mandated by deadline-poll (R14); never flag the poll site
          // itself, whatever its callees look like to the allocator pass.
          bool is_poll = false;
          for (std::size_t p : f.poll_toks)
            if (p == call.tok) is_poll = true;
          if (is_poll) continue;
          bool alloc = false;
          for (std::size_t callee : repo.resolved(id, c))
            if (repo.allocates(callee)) alloc = true;
          if (alloc && reported_lines.insert(call.line).second)
            out->push_back({files[fi].path, call.line, "hot-path-alloc-transitive",
                            call.name + "() reached from a hot-path loop allocates "
                                "(directly or through its callees) — hoist the "
                                "allocation into a workspace passed in"});
        }
      }
    }
  }
}

// R16 atomic-order: every relaxed/acquire/release/acq_rel order in the
// concurrency directories needs a nearby ordering-rationale comment, and a
// bare seq_cst inside a src/parallel/ loop (the hot paths) is flagged too —
// either justify the full fence or relax it with a rationale.
void rule_atomic_order(const std::vector<SourceFile>& files, const RepoIndex& repo,
                       const Config& cfg, std::vector<Finding>* out) {
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    bool in_scope = false;
    for (const std::string& d : cfg.atomic_order_dirs)
      if (starts_with(files[fi].rel, d)) in_scope = true;
    if (!in_scope) continue;
    const bool hot_dir = starts_with(files[fi].rel, "src/parallel/");
    const FileIndex* fx = repo.files()[fi];
    for (const FunctionDecl& f : fx->functions) {
      for (const AtomicOrderRef& a : f.atomics) {
        if (a.justified) continue;
        if (a.order != "seq_cst") {
          out->push_back({files[fi].path, a.line, "atomic-order",
                          "memory_order_" + a.order + " without an ordering rationale "
                              "— add a comment stating why this relaxation is safe"});
        } else if (hot_dir && a.in_loop) {
          out->push_back({files[fi].path, a.line, "atomic-order",
                          "seq_cst atomic inside a hot loop — justify the full "
                              "fence in a comment or relax it with a rationale"});
        }
      }
    }
  }
}

// R17 module-layering: `#include` edges must point down the module DAG, and
// include cycles are findings. Cross-cutting modules (obs) may be included
// from anywhere.
void rule_module_layering(const std::vector<SourceFile>& files, const RepoIndex& repo,
                          const Config& cfg, std::vector<Finding>* out) {
  const auto rank_of = [&](const std::string& module) {
    const auto it = cfg.module_ranks.find(module);
    return it == cfg.module_ranks.end() ? -1 : it->second;
  };
  std::map<std::string, std::size_t> by_rel;
  for (std::size_t fi = 0; fi < files.size(); ++fi) by_rel[files[fi].rel] = fi;

  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const FileIndex* fx = repo.files()[fi];
    const int my_rank = rank_of(fx->module);
    if (my_rank < 0) continue;
    for (const IncludeRef& inc : fx->includes) {
      if (inc.system) continue;
      // Module of the include target: leading path segment of the spelled
      // target (the repo convention is `#include "module/file.h"`).
      const std::size_t slash = inc.target.find('/');
      if (slash == std::string::npos) continue;  // same-dir include
      const std::string target_module = inc.target.substr(0, slash);
      if (target_module == fx->module) continue;
      if (contains(cfg.cross_cutting_modules, target_module)) continue;
      const int target_rank = rank_of(target_module);
      if (target_rank < 0) continue;
      if (target_rank > my_rank)
        out->push_back({files[fi].path, inc.line, "module-layering",
                        "`" + fx->module + "` (layer " + std::to_string(my_rank) +
                            ") includes `" + inc.target + "` from higher layer `" +
                            target_module + "` (layer " + std::to_string(target_rank) +
                            ") — the module DAG points the other way"});
    }
  }

  for (const std::vector<std::size_t>& cycle : repo.include_cycles()) {
    std::string path;
    for (std::size_t m : cycle) {
      if (!path.empty()) path += " -> ";
      path += repo.files()[m]->rel;
    }
    const std::size_t anchor = cycle.front();
    int line = 1;
    for (const IncludeRef& inc : repo.files()[anchor]->includes)
      if (!inc.system) {
        line = inc.line;
        break;
      }
    out->push_back({files[anchor].path, line, "module-layering",
                    "include cycle: " + path + " — break the cycle with a forward "
                        "declaration or an interface split"});
  }
}

}  // namespace

std::string index_selftest(bool* ok) {
  bool pass = true;
  std::ostringstream report;
  const auto check = [&](bool cond, const std::string& what) {
    report << (cond ? "ok:   " : "FAIL: ") << what << "\n";
    if (!cond) pass = false;
  };

  // Synthetic three-file repo: an iterative kernel that polls and throws, a
  // header-defined method sharing the kernel's name, and a caller file.
  const std::string lu_h =
      "#pragma once\n"
      "namespace csq { namespace linalg {\n"
      "class Lu {\n"
      " public:\n"
      "  int solve(int b) { return b + 1; }\n"
      "};\n"
      "} }\n";
  const std::string qbd_cc =
      "#include \"linalg/lu.h\"\n"
      "namespace csq { namespace qbd {\n"
      "int solve(int n) {\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    if (budget.interrupted()) break;\n"
      "  }\n"
      "  if (n < 0) throw NotConvergedError(\"no\");\n"
      "  return n;\n"
      "} } }\n";
  const std::string sweep_cc =
      "namespace csq {\n"
      "int sweep_all(int n) { return qbd::solve(n); }\n"
      "int sweep_safe(int n) {\n"
      "  try {\n"
      "    return qbd::solve(n);\n"
      "  } catch (const NotConvergedError& e) {\n"
      "    return 0;\n"
      "  }\n"
      "}\n"
      "int sweep_method(Lu& lu, int n) { return lu.solve(n); }\n"
      "int sweep_external(int n) { return external_helper(n); }\n"
      "}\n";
  // Include cycle pair.
  const std::string x_h = "#pragma once\n#include \"a/y.h\"\n";
  const std::string y_h = "#pragma once\n#include \"a/x.h\"\n";

  std::vector<SourceFile> files;
  files.push_back(scan_source("src/linalg/lu.h", "src/linalg/lu.h", lu_h));
  files.push_back(scan_source("src/qbd/qbd.cc", "src/qbd/qbd.cc", qbd_cc));
  files.push_back(scan_source("src/core/sweep.cc", "src/core/sweep.cc", sweep_cc));
  files.push_back(scan_source("src/a/x.h", "src/a/x.h", x_h));
  files.push_back(scan_source("src/a/y.h", "src/a/y.h", y_h));

  std::vector<FileIndex> owned;
  owned.reserve(files.size());
  for (const SourceFile& f : files) owned.push_back(build_file_index(f));
  std::vector<const FileIndex*> ptrs;
  for (const FileIndex& fx : owned) ptrs.push_back(&fx);

  const Config cfg;
  const RepoIndex repo = RepoIndex::build(ptrs, cfg);

  // --- extraction --------------------------------------------------------
  check(owned[0].functions.size() == 1 && owned[0].functions[0].name == "solve" &&
            owned[0].functions[0].is_method,
        "inline class method extracted as a method");
  check(owned[1].functions.size() == 1 && owned[1].functions[0].scope == "csq::qbd",
        "namespace scope chain recovered for the kernel");
  check(owned[1].functions[0].polls_budget, "interrupted() poll detected");
  check(owned[1].functions[0].throws.size() == 1 &&
            owned[1].functions[0].throws[0].type == "NotConvergedError",
        "throw site type extracted");
  check(owned[2].functions.size() == 4, "all four caller functions extracted");

  // --- symbol resolution -------------------------------------------------
  const auto fn_named = [&](std::size_t file, const std::string& name) {
    for (std::size_t k = 0; k < owned[file].functions.size(); ++k)
      if (owned[file].functions[k].name == name) return FnRef{file, k};
    return FnRef{file, owned[file].functions.size()};
  };
  const FnRef sweep_all = fn_named(2, "sweep_all");
  const FnRef sweep_safe = fn_named(2, "sweep_safe");
  const FnRef sweep_method = fn_named(2, "sweep_method");
  const FnRef sweep_external = fn_named(2, "sweep_external");
  {
    const FunctionDecl& f = repo.fn(sweep_all);
    check(f.calls.size() == 1, "sweep_all has one call site");
    const std::vector<FnRef> cands = repo.resolve(f.calls[0], sweep_all);
    check(cands.size() == 1 && cands[0].file == 1,
          "qbd::solve resolves only to the free kernel, not the Lu method");
  }
  {
    const FunctionDecl& f = repo.fn(sweep_method);
    const std::vector<FnRef> cands = repo.resolve(f.calls.back(), sweep_method);
    check(cands.size() == 1 && cands[0].file == 0,
          "lu.solve() resolves only to the Lu method, not the free kernel");
  }

  // --- fixpoints ----------------------------------------------------------
  check(repo.escapes(repo.fn_id(sweep_all)).count("NotConvergedError") == 1,
        "NotConvergedError propagates to the uncaught caller");
  check(repo.escapes(repo.fn_id(sweep_safe)).empty(),
        "catch (NotConvergedError&) stops the propagation");
  check(repo.polls(repo.fn_id(sweep_all)), "polling propagates through the call");
  check(repo.reaches_kernel(repo.fn_id(sweep_all)), "kernel reachability propagates");

  // --- conservatism on unresolved calls -----------------------------------
  const std::size_t ext = repo.fn_id(sweep_external);
  check(repo.escapes(ext).empty() && !repo.polls(ext) && !repo.allocates(ext) &&
            !repo.reaches_kernel(ext),
        "unresolved external_helper() supplies no property (may do anything)");

  // --- include-graph cycles ------------------------------------------------
  check(repo.include_cycles().size() == 1 && repo.include_cycles()[0].size() == 2,
        "x.h <-> y.h include cycle detected as one 2-file SCC");

  // --- cache round-trip ----------------------------------------------------
  {
    const std::string record = serialize_file_index(owned[1]);
    FileIndex back;
    const bool loaded = deserialize_file_index(record, &back);
    check(loaded && back.rel == owned[1].rel && back.content_hash == owned[1].content_hash &&
              back.functions.size() == 1 && back.functions[0].name == "solve" &&
              back.functions[0].polls_budget && back.functions[0].throws.size() == 1 &&
              back.functions[0].loops.size() == 1,
          "FileIndex serialization round-trips the semantic facts");
    IndexCache cache;
    cache.store(owned[1]);
    IndexCache reloaded;
    const bool cache_ok = reloaded.load(cache.serialize());
    check(cache_ok && reloaded.size() == 1 &&
              reloaded.lookup("src/qbd/qbd.cc", owned[1].content_hash) != nullptr &&
              reloaded.lookup("src/qbd/qbd.cc", owned[1].content_hash + 1) == nullptr,
          "IndexCache hits on (rel, hash) and misses on a changed hash");
    check(!reloaded.load("bogus header\njunk\n") && reloaded.size() == 0,
          "cache load rejects a foreign format and leaves the cache empty");
  }

  if (ok != nullptr) *ok = pass;
  return report.str();
}

void run_semantic_rules(const std::vector<SourceFile>& files,
                        const std::vector<const FileIndex*>& indexes,
                        const Config& config, std::vector<Finding>* out) {
  const RepoIndex repo = RepoIndex::build(indexes, config);
  rule_throw_flow(files, repo, config, out);
  rule_deadline_poll(files, repo, config, out);
  rule_hot_alloc_transitive(files, repo, config, out);
  rule_atomic_order(files, repo, config, out);
  rule_module_layering(files, repo, config, out);
}

}  // namespace csq::lint
