#include "index.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <utility>

namespace csq::lint {

namespace {

[[nodiscard]] bool starts_with(const std::string& s, const std::string& p) {
  return s.size() >= p.size() && s.compare(0, p.size(), p) == 0;
}

// Keywords that can precede `(` without being a call.
[[nodiscard]] bool is_call_excluded_keyword(const std::string& id) {
  static const char* const kNotCalls[] = {
      "if",     "for",     "while",    "switch",   "catch",    "return",
      "sizeof", "alignof", "decltype", "noexcept", "throw",    "new",
      "delete", "and",     "or",       "not",      "co_await", "co_return",
      "co_yield"};
  for (const char* k : kNotCalls)
    if (id == k) return true;
  return false;
}

// Index of the token matching the opener at `open`, or tokens.size().
[[nodiscard]] std::size_t matching(const std::vector<Token>& toks, std::size_t open,
                                   const char* o, const char* c) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == o) ++depth;
    if (toks[i].text == c && --depth == 0) return i;
  }
  return toks.size();
}

// Words whose presence marks a comment as an ordering rationale (R16).
[[nodiscard]] bool is_order_rationale(const std::string& text) {
  static const char* const kWords[] = {"relaxed",   "acquire", "release",
                                       "acq_rel",   "seq_cst", "order",
                                       "race",      "racy",    "monotonic",
                                       "fence",     "synchron", "happens-before",
                                       "tsan"};
  std::string lower;
  lower.reserve(text.size());
  for (char ch : text) lower += static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  for (const char* w : kWords)
    if (lower.find(w) != std::string::npos) return true;
  return false;
}

// Line span of a comment (block comments span multiple lines).
[[nodiscard]] int comment_end_line(const Comment& c) {
  return c.line + static_cast<int>(std::count(c.text.begin(), c.text.end(), '\n'));
}

[[nodiscard]] std::string module_of(const std::string& rel) {
  if (starts_with(rel, "tools/")) return "tools";
  if (starts_with(rel, "tests/")) return "tests";
  if (starts_with(rel, "src/")) {
    const std::size_t slash = rel.find('/', 4);
    if (slash == std::string::npos) return "";  // src/csq.h umbrella
    return rel.substr(4, slash - 4);
  }
  return "";
}

// %-escape for the cache serialization: fields must stay single-token.
[[nodiscard]] std::string esc(const std::string& s) {
  std::string out;
  for (char ch : s) {
    if (ch == ' ' || ch == '%' || ch == '\n' || ch == '\t') {
      static const char* hex = "0123456789ABCDEF";
      out += '%';
      out += hex[(static_cast<unsigned char>(ch) >> 4) & 0xF];
      out += hex[static_cast<unsigned char>(ch) & 0xF];
    } else {
      out += ch;
    }
  }
  return out.empty() ? std::string("%00") : out;  // empty-field sentinel
}

[[nodiscard]] std::string unesc(const std::string& s) {
  if (s == "%00") return "";
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      out += static_cast<char>(std::stoi(s.substr(i + 1, 2), nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

}  // namespace

const std::vector<std::string>& allocator_call_names() {
  static const std::vector<std::string> kNames = {
      "push_back", "emplace_back", "resize",      "reserve", "insert",
      "emplace",   "make_unique",  "make_shared", "Matrix",  "Vector"};
  return kNames;
}

std::uint64_t content_hash(const std::string& content) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (char ch : content) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

FileIndex build_file_index(const SourceFile& file) {
  FileIndex idx;
  idx.rel = file.rel;
  idx.content_hash = content_hash(file.content);
  idx.is_header = file.is_header;
  idx.module = module_of(file.rel);

  // Includes straight off the directive list.
  for (const Directive& d : file.directives) {
    if (!starts_with(d.text, "#include")) continue;
    IncludeRef inc;
    inc.line = d.line;
    std::size_t q = d.text.find('"');
    std::size_t a = d.text.find('<');
    if (q != std::string::npos && (a == std::string::npos || q < a)) {
      const std::size_t e = d.text.find('"', q + 1);
      if (e == std::string::npos) continue;
      inc.target = d.text.substr(q + 1, e - q - 1);
      inc.system = false;
    } else if (a != std::string::npos) {
      const std::size_t e = d.text.find('>', a + 1);
      if (e == std::string::npos) continue;
      inc.target = d.text.substr(a + 1, e - a - 1);
      inc.system = true;
    } else {
      continue;
    }
    idx.includes.push_back(std::move(inc));
  }

  const std::vector<Token>& t = file.tokens;
  const std::size_t n = t.size();

  // Scope stack: what each currently-open `{` introduced.
  enum class ScopeKind { kNamespace, kClass, kFunction, kBlock };
  struct Scope {
    ScopeKind kind;
    std::string name;   // namespace or class name
    int fn = -1;        // index into idx.functions for kFunction
  };
  std::vector<Scope> scopes;
  // Braces whose scope kind was decided by a lookahead below.
  std::map<std::size_t, Scope> pending_brace;

  const auto in_function = [&]() {
    for (const Scope& s : scopes)
      if (s.kind == ScopeKind::kFunction) return s.fn;
    return -1;
  };
  const auto at_decl_scope = [&]() {
    return scopes.empty() || scopes.back().kind == ScopeKind::kNamespace ||
           scopes.back().kind == ScopeKind::kClass;
  };

  std::size_t detect_resume = 0;  // function-signature lookahead guard
  // Token indices of atomics, parallel to the owning function's list.
  std::vector<std::pair<int, std::size_t>> atomic_toks;

  for (std::size_t i = 0; i < n; ++i) {
    const Token& tok = t[i];

    if (tok.kind == TokKind::kPunct && tok.text == "{") {
      const auto it = pending_brace.find(i);
      if (it != pending_brace.end()) {
        scopes.push_back(it->second);
        pending_brace.erase(it);
      } else {
        scopes.push_back({ScopeKind::kBlock, "", -1});
      }
      continue;
    }
    if (tok.kind == TokKind::kPunct && tok.text == "}") {
      if (!scopes.empty()) {
        if (scopes.back().kind == ScopeKind::kFunction && scopes.back().fn >= 0)
          idx.functions[static_cast<std::size_t>(scopes.back().fn)].end_line = tok.line;
        scopes.pop_back();
      }
      continue;
    }
    if (tok.kind != TokKind::kIdent) continue;

    // namespace [a::b] { ...
    if (tok.text == "namespace" && in_function() < 0) {
      std::string name;
      std::size_t j = i + 1;
      while (j < n && (t[j].kind == TokKind::kIdent ||
                       (t[j].kind == TokKind::kPunct && t[j].text == "::"))) {
        if (t[j].kind == TokKind::kIdent) name = t[j].text;  // innermost wins
        ++j;
      }
      if (j < n && t[j].text == "{") {
        pending_brace[j] = {ScopeKind::kNamespace, name, -1};
        if (!name.empty()) idx.namespaces.push_back(name);
      }
      continue;
    }

    // class/struct Name ... { (forward declarations fall through harmlessly).
    if ((tok.text == "class" || tok.text == "struct") &&
        (i == 0 || t[i - 1].text != "enum") && in_function() < 0) {
      std::string name;
      std::size_t j = i + 1;
      while (j < n) {
        if (t[j].kind == TokKind::kIdent && name.empty()) name = t[j].text;
        if (t[j].kind == TokKind::kPunct &&
            (t[j].text == "{" || t[j].text == ";" || t[j].text == "=" || t[j].text == "("))
          break;
        ++j;
      }
      if (j < n && t[j].text == "{" && !name.empty())
        pending_brace[j] = {ScopeKind::kClass, name, -1};
      continue;
    }

    const int fn = in_function();

    // ---- Function definition detection (decl scope only) -------------------
    if (fn < 0 && at_decl_scope() && i >= detect_resume && i + 1 < n &&
        t[i + 1].kind == TokKind::kPunct && t[i + 1].text == "(" &&
        !is_call_excluded_keyword(tok.text) && tok.text != "operator") {
      // Name and any explicit A::B:: qualifier chain walking back.
      std::string name = tok.text;
      std::vector<std::string> quals;
      std::size_t back = i;
      while (back >= 2 && t[back - 1].kind == TokKind::kPunct && t[back - 1].text == "::" &&
             t[back - 2].kind == TokKind::kIdent) {
        quals.insert(quals.begin(), t[back - 2].text);
        back -= 2;
      }
      if (back >= 1 && t[back - 1].kind == TokKind::kPunct && t[back - 1].text == "~")
        name = "~" + name;

      const std::size_t close = matching(t, i + 1, "(", ")");
      if (close < n) {
        // Skip the decoration between `)` and the body `{` (or a terminator).
        std::size_t j = close + 1;
        bool is_def = false;
        while (j < n) {
          const Token& d = t[j];
          if (d.kind == TokKind::kPunct && d.text == "{") {
            is_def = true;
            break;
          }
          if (d.kind == TokKind::kPunct &&
              (d.text == ";" || d.text == "," || d.text == "=" || d.text == ")"))
            break;
          if (d.kind == TokKind::kPunct && d.text == ":") {
            // Constructor init list: ident (...)|{...} groups, comma-joined.
            ++j;
            while (j < n) {
              while (j < n && (t[j].kind == TokKind::kIdent ||
                               (t[j].kind == TokKind::kPunct &&
                                (t[j].text == "::" || t[j].text == "<" || t[j].text == ">"))))
                ++j;
              if (j >= n || t[j].kind != TokKind::kPunct) break;
              if (t[j].text == "(")
                j = matching(t, j, "(", ")") + 1;
              else if (t[j].text == "{")
                j = matching(t, j, "{", "}") + 1;
              else
                break;
              if (j < n && t[j].text == ",") {
                ++j;
                continue;
              }
              break;
            }
            if (j < n && t[j].text == "{") is_def = true;
            break;
          }
          if (d.kind == TokKind::kPunct && d.text == "(") {
            j = matching(t, j, "(", ")") + 1;  // noexcept(...)
            continue;
          }
          // const / noexcept / override / final / -> trailing return / & && * < >
          ++j;
        }
        detect_resume = j + 1;
        if (is_def && j < n) {
          FunctionDecl f;
          f.name = name;
          f.explicit_quals = quals;
          f.line = tok.line;
          f.end_line = tok.line;
          f.body_begin = j;
          f.body_end = matching(t, j, "{", "}");
          if (f.body_end >= n) f.body_end = n - 1;
          std::string scope;
          bool in_class = false;
          bool anon_ns = false;
          for (const Scope& s : scopes) {
            if (s.kind == ScopeKind::kNamespace) {
              if (s.name.empty())
                anon_ns = true;
              else
                scope += (scope.empty() ? "" : "::") + s.name;
            } else if (s.kind == ScopeKind::kClass) {
              in_class = true;
              scope += (scope.empty() ? "" : "::") + s.name;
            }
          }
          f.scope = scope;
          f.is_method = in_class;  // Class:: quals are classified repo-wide later
          // `static` shortly before the name (outside a param list) → internal.
          for (std::size_t k = back; k > 0 && k + 12 > back; --k) {
            const Token& p = t[k - 1];
            if (p.kind == TokKind::kPunct &&
                (p.text == ";" || p.text == "}" || p.text == "{" || p.text == ")"))
              break;
            if (p.kind == TokKind::kIdent && p.text == "static") f.internal = true;
          }
          if (anon_ns) f.internal = true;
          pending_brace[j] = {ScopeKind::kFunction, name,
                              static_cast<int>(idx.functions.size())};
          idx.functions.push_back(std::move(f));
        }
      }
      continue;
    }

    if (fn < 0) continue;
    FunctionDecl& f = idx.functions[static_cast<std::size_t>(fn)];

    // ---- Facts inside a function body --------------------------------------

    // throw <Type>(...)
    if (tok.text == "throw") {
      if (i + 1 < n && t[i + 1].kind == TokKind::kPunct && t[i + 1].text == ";") continue;
      std::string last;
      for (std::size_t j = i + 1;
           j < n && (t[j].kind == TokKind::kIdent ||
                     (t[j].kind == TokKind::kPunct && t[j].text == "::"));
           ++j)
        if (t[j].kind == TokKind::kIdent) last = t[j].text;
      if (!last.empty()) f.throws.push_back({tok.line, i, last});
      continue;
    }

    // try { ... } catch (...) { ... }
    if (tok.text == "try" && i + 1 < n && t[i + 1].text == "{") {
      TryRegion region;
      region.body_begin = i + 1;
      region.body_end = matching(t, i + 1, "{", "}");
      std::size_t j = region.body_end + 1;
      while (j + 1 < n && t[j].kind == TokKind::kIdent && t[j].text == "catch" &&
             t[j + 1].text == "(") {
        const std::size_t close = matching(t, j + 1, "(", ")");
        std::string type_last;
        bool all = false;
        for (std::size_t k = j + 2; k < close; ++k) {
          if (t[k].kind == TokKind::kPunct && t[k].text == "...") all = true;
          if (t[k].kind == TokKind::kIdent && t[k].text != "const") {
            // The type's last component is the ident before & / * (or the
            // last ident when caught by value with no parameter name).
            if (k + 1 < n && t[k + 1].kind == TokKind::kPunct &&
                (t[k + 1].text == "&" || t[k + 1].text == "*"))
              type_last = t[k].text;
            else if (type_last.empty())
              type_last = t[k].text;
          }
        }
        if (type_last == "exception" || type_last == "Error") all = true;
        if (all)
          region.catches_all = true;
        else if (!type_last.empty())
          region.caught.push_back(type_last);
        std::size_t body = close + 1;
        j = (body < n && t[body].text == "{") ? matching(t, body, "{", "}") + 1 : body;
      }
      f.tries.push_back(std::move(region));
      // Do not `continue`: the body tokens are revisited for calls/loops.
    }

    // for/while/do loop bodies.
    if (tok.text == "for" || tok.text == "while" || tok.text == "do") {
      LoopRef loop;
      loop.line = tok.line;
      if (tok.text == "do") {
        if (i + 1 >= n || t[i + 1].text != "{") continue;
        loop.body_begin = i + 1;
        loop.body_end = matching(t, i + 1, "{", "}");
      } else {
        if (i + 1 >= n || t[i + 1].text != "(") continue;
        const std::size_t close = matching(t, i + 1, "(", ")");
        if (close >= n) continue;
        std::size_t body = close + 1;
        if (body < n && t[body].text == "{") {
          loop.body_begin = body;
          loop.body_end = matching(t, body, "{", "}");
        } else {
          loop.body_begin = body;
          std::size_t e = body;
          while (e < n && t[e].text != ";") ++e;
          loop.body_end = e;
        }
      }
      if (loop.body_end >= n) loop.body_end = n - 1;
      f.loops.push_back(loop);
      continue;
    }

    // Budget polls.
    if (tok.text == "interrupted" || tok.text == "expired" || tok.text == "cancelled" ||
        (tok.text == "check" && i > 0 && t[i - 1].kind == TokKind::kPunct &&
         (t[i - 1].text == "." || t[i - 1].text == "->"))) {
      f.polls_budget = true;
      f.poll_toks.push_back(i);
    }

    // Allocation facts.
    if (tok.text == "new") f.allocates = true;
    if ((tok.text == "Matrix" || tok.text == "Vector") && i + 1 < n &&
        t[i + 1].kind == TokKind::kIdent)
      f.allocates = true;  // local `Matrix tmp` declaration

    // Atomic memory orders: memory_order_relaxed or memory_order::relaxed.
    if (starts_with(tok.text, "memory_order")) {
      std::string order;
      if (starts_with(tok.text, "memory_order_")) {
        order = tok.text.substr(13);
      } else if (tok.text == "memory_order" && i + 2 < n && t[i + 1].text == "::" &&
                 t[i + 2].kind == TokKind::kIdent) {
        order = t[i + 2].text;
      }
      if (!order.empty()) {
        f.atomics.push_back({tok.line, order, false, false});
        atomic_toks.emplace_back(fn, i);
      }
      continue;
    }

    // Call sites.
    if (i + 1 < n && t[i + 1].kind == TokKind::kPunct && t[i + 1].text == "(" &&
        !is_call_excluded_keyword(tok.text)) {
      CallRef call;
      call.line = tok.line;
      call.tok = i;
      call.name = tok.text;
      if (i > 0 && t[i - 1].kind == TokKind::kPunct) {
        if (t[i - 1].text == "." || t[i - 1].text == "->")
          call.is_method = true;
        else if (t[i - 1].text == "::" && i > 1 && t[i - 2].kind == TokKind::kIdent)
          call.qualifier = t[i - 2].text;
      }
      if (std::find(allocator_call_names().begin(), allocator_call_names().end(),
                    call.name) != allocator_call_names().end())
        f.allocates = true;
      f.calls.push_back(std::move(call));
    }
  }

  // Post-pass: atomic in_loop and justification from comments.
  {
    std::map<int, std::size_t> nth;  // fn index -> next atomic slot
    for (auto [fn_i, tok_idx] : atomic_toks) {
      FunctionDecl& f = idx.functions[static_cast<std::size_t>(fn_i)];
      const std::size_t k = nth[fn_i]++;
      if (k >= f.atomics.size()) continue;
      AtomicOrderRef& a = f.atomics[k];
      // Inside the body extent, or on the loop-header line itself — a
      // `while (flag.load(...))` condition executes every iteration too.
      for (const LoopRef& loop : f.loops)
        if ((tok_idx >= loop.body_begin && tok_idx <= loop.body_end) || a.line == loop.line)
          a.in_loop = true;
      for (const Comment& c : file.comments) {
        const int end = comment_end_line(c);
        // Trailing comment on the same line, or a comment ending on one of
        // the two preceding lines, that states an ordering rationale.
        if (end >= a.line - 2 && c.line <= a.line && is_order_rationale(c.text))
          a.justified = true;
      }
    }
  }
  for (FunctionDecl& f : idx.functions) {
    for (const Comment& c : file.comments) {
      const int end = comment_end_line(c);
      // Rationale comment inside the body or in the doc block directly above.
      if (end >= f.line - 2 && c.line <= f.end_line && is_order_rationale(c.text))
        f.has_order_rationale = true;
    }
    if (f.has_order_rationale)
      for (AtomicOrderRef& a : f.atomics) a.justified = true;
  }

  std::sort(idx.namespaces.begin(), idx.namespaces.end());
  idx.namespaces.erase(std::unique(idx.namespaces.begin(), idx.namespaces.end()),
                       idx.namespaces.end());
  return idx;
}

// --- Serialization ----------------------------------------------------------

std::string serialize_file_index(const FileIndex& x) {
  std::ostringstream o;
  o << "F " << esc(x.rel) << ' ' << x.content_hash << ' ' << (x.is_header ? 1 : 0) << ' '
    << esc(x.module) << '\n';
  for (const std::string& ns : x.namespaces) o << "N " << esc(ns) << '\n';
  for (const IncludeRef& inc : x.includes)
    o << "I " << inc.line << ' ' << (inc.system ? 1 : 0) << ' ' << esc(inc.target) << '\n';
  for (const FunctionDecl& f : x.functions) {
    const int flags = (f.is_method ? 1 : 0) | (f.internal ? 2 : 0) |
                      (f.polls_budget ? 4 : 0) | (f.allocates ? 8 : 0) |
                      (f.has_order_rationale ? 16 : 0);
    o << "D " << esc(f.name) << ' ' << esc(f.scope) << ' ' << f.line << ' ' << f.end_line
      << ' ' << f.body_begin << ' ' << f.body_end << ' ' << flags << ' '
      << f.explicit_quals.size();
    for (const std::string& q : f.explicit_quals) o << ' ' << esc(q);
    o << '\n';
    for (const CallRef& c : f.calls)
      o << "C " << c.line << ' ' << c.tok << ' ' << esc(c.name) << ' ' << esc(c.qualifier)
        << ' ' << (c.is_method ? 1 : 0) << '\n';
    for (const ThrowRef& th : f.throws)
      o << "T " << th.line << ' ' << th.tok << ' ' << esc(th.type) << '\n';
    for (const LoopRef& l : f.loops)
      o << "L " << l.line << ' ' << l.body_begin << ' ' << l.body_end << '\n';
    for (std::size_t p : f.poll_toks) o << "P " << p << '\n';
    for (const TryRegion& tr : f.tries) {
      o << "Y " << tr.body_begin << ' ' << tr.body_end << ' ' << (tr.catches_all ? 1 : 0)
        << ' ' << tr.caught.size();
      for (const std::string& c : tr.caught) o << ' ' << esc(c);
      o << '\n';
    }
    for (const AtomicOrderRef& a : f.atomics)
      o << "A " << a.line << ' ' << esc(a.order) << ' ' << (a.justified ? 1 : 0) << ' '
        << (a.in_loop ? 1 : 0) << '\n';
  }
  return o.str();
}

bool deserialize_file_index(const std::string& record, FileIndex* out) {
  FileIndex x;
  std::istringstream in(record);
  std::string line;
  FunctionDecl* fn = nullptr;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "F") {
      std::string rel, module;
      int header = 0;
      ls >> rel >> x.content_hash >> header >> module;
      if (ls.fail()) return false;
      x.rel = unesc(rel);
      x.module = unesc(module);
      x.is_header = header != 0;
      saw_header = true;
    } else if (tag == "N") {
      std::string ns;
      ls >> ns;
      x.namespaces.push_back(unesc(ns));
    } else if (tag == "I") {
      IncludeRef inc;
      int system = 0;
      std::string target;
      ls >> inc.line >> system >> target;
      if (ls.fail()) return false;
      inc.system = system != 0;
      inc.target = unesc(target);
      x.includes.push_back(std::move(inc));
    } else if (tag == "D") {
      FunctionDecl f;
      std::string name, scope;
      int flags = 0;
      std::size_t nquals = 0;
      ls >> name >> scope >> f.line >> f.end_line >> f.body_begin >> f.body_end >> flags >>
          nquals;
      if (ls.fail()) return false;
      f.name = unesc(name);
      f.scope = unesc(scope);
      f.is_method = (flags & 1) != 0;
      f.internal = (flags & 2) != 0;
      f.polls_budget = (flags & 4) != 0;
      f.allocates = (flags & 8) != 0;
      f.has_order_rationale = (flags & 16) != 0;
      for (std::size_t k = 0; k < nquals; ++k) {
        std::string q;
        ls >> q;
        f.explicit_quals.push_back(unesc(q));
      }
      x.functions.push_back(std::move(f));
      fn = &x.functions.back();
    } else if (fn != nullptr && tag == "C") {
      CallRef c;
      std::string name, qual;
      int method = 0;
      ls >> c.line >> c.tok >> name >> qual >> method;
      if (ls.fail()) return false;
      c.name = unesc(name);
      c.qualifier = unesc(qual);
      c.is_method = method != 0;
      fn->calls.push_back(std::move(c));
    } else if (fn != nullptr && tag == "T") {
      ThrowRef th;
      std::string type;
      ls >> th.line >> th.tok >> type;
      if (ls.fail()) return false;
      th.type = unesc(type);
      fn->throws.push_back(std::move(th));
    } else if (fn != nullptr && tag == "P") {
      std::size_t p = 0;
      ls >> p;
      if (ls.fail()) return false;
      fn->poll_toks.push_back(p);
    } else if (fn != nullptr && tag == "L") {
      LoopRef l;
      ls >> l.line >> l.body_begin >> l.body_end;
      if (ls.fail()) return false;
      fn->loops.push_back(l);
    } else if (fn != nullptr && tag == "Y") {
      TryRegion tr;
      int all = 0;
      std::size_t ncaught = 0;
      ls >> tr.body_begin >> tr.body_end >> all >> ncaught;
      if (ls.fail()) return false;
      tr.catches_all = all != 0;
      for (std::size_t k = 0; k < ncaught; ++k) {
        std::string c;
        ls >> c;
        tr.caught.push_back(unesc(c));
      }
      fn->tries.push_back(std::move(tr));
    } else if (fn != nullptr && tag == "A") {
      AtomicOrderRef a;
      std::string order;
      int justified = 0;
      int in_loop = 0;
      ls >> a.line >> order >> justified >> in_loop;
      if (ls.fail()) return false;
      a.order = unesc(order);
      a.justified = justified != 0;
      a.in_loop = in_loop != 0;
      fn->atomics.push_back(std::move(a));
    } else {
      return false;
    }
  }
  if (!saw_header) return false;
  *out = std::move(x);
  return true;
}

// --- IndexCache -------------------------------------------------------------

namespace {
constexpr const char* kCacheMagic = "csq-lint-index-cache v1";
}

const FileIndex* IndexCache::lookup(const std::string& rel, std::uint64_t hash) const {
  const auto it = entries_.find(rel);
  if (it == entries_.end() || it->second.content_hash != hash) return nullptr;
  return &it->second;
}

void IndexCache::store(FileIndex index) {
  entries_[index.rel] = std::move(index);
}

std::string IndexCache::serialize() const {
  std::ostringstream o;
  o << kCacheMagic << '\n';
  for (const auto& [rel, idx] : entries_) o << serialize_file_index(idx) << "END\n";
  return o.str();
}

bool IndexCache::load(const std::string& text) {
  entries_.clear();
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kCacheMagic) return false;
  std::string record;
  while (std::getline(in, line)) {
    if (line == "END") {
      FileIndex idx;
      if (!deserialize_file_index(record, &idx)) {
        entries_.clear();
        return false;
      }
      entries_[idx.rel] = std::move(idx);
      record.clear();
    } else {
      record += line;
      record += '\n';
    }
  }
  return true;
}

}  // namespace csq::lint
