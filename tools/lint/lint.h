// csq_lint — project-invariant static analysis for the cyclesteal repo.
//
// A dependency-free C++17-style lint pass: a lightweight comment/string-aware
// tokenizer (no libclang) plus a registry of project-specific rules that
// mechanically enforce the invariants the QBD/busy-period analysis relies on
// (see docs/static-analysis.md for the rule catalog):
//
//   raw-throw          (R1) only core/status.h taxonomy types may be thrown
//   no-float-eq        (R2) no ==/!= involving floating-point literals —
//                           use core/numeric.h approx_eq/exactly_eq
//   nondeterminism     (R3) no std::rand/random_device/time()/..now() in
//                           sim/, msim/, parallel/ (bit-determinism gate)
//   hot-path-alloc     (R4) hot-file loops must use *_into kernels instead
//                           of allocating matrix/vector operators
//   header-hygiene     (R5) #pragma once, no `using namespace`, direct
//                           includes for common std symbols
//   error-docs         (R6) a header must document every taxonomy error
//                           class its implementation file throws
//   catch-all-swallow  (R7) catch (...) must rethrow or convert to Status
//   banned-identifier  (R8) assert()/rand()/srand() are banned (CSQ_ASSERT,
//                           sim::Rng)
//   fault-site-naming  (R9) CSQ_FAULT_POINT sites must be literal
//                           module.sub.action strings, each registered
//                           exactly once repo-wide
//   metric-naming      (R10) CSQ_OBS_* metric/span names must be literal
//                           module.sub.metric strings, each registered
//                           exactly once repo-wide (src/obs/obs.h catalog)
//   serve-hygiene      (R11) request-handler code (src/serve/,
//                           tools/csq_serve.cc) must not terminate the
//                           process or push onto a request queue outside
//                           the bounded admit path, and every serve.*
//                           metric must appear in the docs/serving.md
//                           metric catalog
//   hot-path-generic-mult (R12) QBD solver code must dispatch matrix
//                           products through the structure-aware kernels
//                           (linalg::multiply_into_pattern /
//                           multiply_into_dense), not the generic
//                           multiply_into
//   journal-hygiene    (R18) no direct file I/O in request-handler code
//                           (durability goes through src/durable/); a
//                           rename() publish in src/durable/ needs an fsync
//   policy-registry    (R19) every sim PolicyKind enumerator must be wired
//                           through policy_name(), make_policy() and the
//                           docs/policies.md policy table
//   suppression        (meta) malformed `csq-lint: allow(...)` comments
//
// Findings print as `file:line: [rule-id] message`. A finding on line L is
// suppressed by `// csq-lint: allow(rule-id): reason` on line L or L-1; the
// reason string is mandatory.
//
// Built as a library (csq_lint_lib) so tests/test_lint.cc and the csq_cli
// --lint-selftest flag can drive it in-process; tools/lint/main.cc wraps it
// into the csq_lint binary with csq_cli-compatible exit codes.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/status.h"

namespace csq::lint {

// --- Tokenizer -------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;
};

struct Comment {
  int line = 0;        // line the comment starts on
  std::string text;    // body without the // or /* */ markers
  bool own_line = false;  // no code precedes it on its line
};

// One preprocessor directive (continuation lines folded in).
struct Directive {
  int line = 0;
  std::string text;  // e.g. "#pragma once", "#include <vector>"
};

struct SourceFile {
  std::string path;  // as given to the scanner (used in findings)
  std::string rel;   // repo-relative path with '/' separators (rule scoping)
  std::string content;
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<Directive> directives;
  bool is_header = false;
};

// Lex `content`. Comments, string/char literals and preprocessor lines are
// recognized and set aside so rules never match inside them. Best-effort:
// malformed input cannot fail, it just produces fewer tokens.
[[nodiscard]] SourceFile scan_source(std::string path, std::string rel, std::string content);

// --- Findings and suppressions --------------------------------------------

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  // Repo-relative path ('/'-separated) for SARIF/baseline matching; filled
  // in by run_rules from the originating SourceFile.
  std::string rel;

  Finding() = default;
  // Rules construct findings without `rel`; run_rules fills it afterwards.
  Finding(std::string file_, int line_, std::string rule_, std::string message_,
          std::string rel_ = {})
      : file(std::move(file_)),
        line(line_),
        rule(std::move(rule_)),
        message(std::move(message_)),
        rel(std::move(rel_)) {}
};

// `file:line: [rule-id] message`
[[nodiscard]] std::string format_finding(const Finding& f);

struct Suppression {
  int line = 0;      // line the marker itself is on (block-comment interior ok)
  int alt_line = 0;  // for block comments: first line after the comment closes
  std::string rule;
  std::string reason;
  bool used = false;
};

// Extract well-formed `csq-lint: allow(rule-id): reason` suppressions from a
// file's comments. Malformed ones (missing reason, unknown rule id) are
// appended to `malformed` as findings of the meta-rule "suppression".
[[nodiscard]] std::vector<Suppression> parse_suppressions(const SourceFile& file,
                                                          std::vector<Finding>* malformed);

// --- Rule registry ---------------------------------------------------------

struct RuleInfo {
  const char* id;       // stable kebab-case rule id
  const char* summary;  // one-line description for --list-rules / docs
  const char* detail;   // paragraph for --explain <rule>: why + how to fix
};

// Every registered rule, in catalog (R1..R10 + meta) order.
[[nodiscard]] const std::vector<RuleInfo>& rules();

struct Config {
  // Files whose loops must stay on the allocation-free *_into kernels
  // (matched as a suffix of the repo-relative path).
  std::vector<std::string> hot_files = {"qbd/qbd.cc", "linalg/lu.cc", "linalg/matrix.cc"};
  // Directories (repo-relative prefixes) that must stay bit-deterministic.
  std::vector<std::string> deterministic_dirs = {"src/sim/", "src/msim/", "src/parallel/"};
  // Exception types permitted after a `throw` keyword (last path component).
  std::vector<std::string> allowed_throw_types = {
      "InvalidInputError",  "UnstableError",       "NotConvergedError",
      "IllConditionedError", "VerificationFailedError", "InternalError",
      "DeadlineExceededError", "CancelledError", "OverloadedError",
      "CorruptJournalError"};
  // Identifiers banned everywhere (rule banned-identifier).
  std::vector<std::string> banned_identifiers = {"assert", "rand", "srand", "gets"};
  // serve-hygiene (R11): repo-relative prefixes holding request-handler code.
  std::vector<std::string> serve_paths = {"src/serve/", "tools/csq_serve.cc"};
  // Process-terminating calls banned inside serve paths (a handler converts
  // failures to taxonomy responses; it never takes the process down).
  std::vector<std::string> serve_banned_calls = {"exit",       "_exit",    "_Exit",
                                                 "quick_exit", "abort",    "terminate"};
  // hot-path-generic-mult (R12): repo-relative prefixes where matrix
  // products must go through the structure-aware kernels of
  // linalg/kernels.h. The generic linalg::multiply_into re-discovers the
  // block structure element by element on every call; inside the QBD
  // iteration that cost dominates the solve, so a generic call there is a
  // performance regression until proven otherwise (suppress with a reason
  // when no block structure exists, e.g. row-vector recursions).
  std::vector<std::string> structured_mult_paths = {"src/qbd/"};
  // Contents of the serve metric catalog (docs/serving.md), loaded by
  // tools/lint/main.cc. Every serve.* obs name registered in a serve path
  // must appear in this text; when it is empty (catalog missing) every
  // serve.* metric is flagged as undocumented.
  std::string serve_metric_docs;
  // Catalog file named in serve-hygiene findings.
  std::string serve_metric_docs_name = "docs/serving.md";
  // deadline-poll (R14): directories whose loops must poll the budget when
  // they transitively reach an iterative kernel.
  std::vector<std::string> deadline_poll_dirs = {"src/qbd/", "src/ctmc/", "src/mg1/",
                                                 "src/sim/", "src/msim/", "src/core/"};
  // The iterative kernels: entry points whose runtime is data-dependent and
  // unbounded without a budget. A function qualifies when its name matches
  // AND it is defined in one of iterative_kernel_modules.
  std::vector<std::string> iterative_kernels = {
      "solve",    "solve_r",  "solve_r_batch", "solve_g_logred",
      "stationary", "run",    "simulate",      "simulate_replications",
      "simulate_multi_replications", "spectral_radius_estimate"};
  std::vector<std::string> iterative_kernel_modules = {"qbd", "ctmc", "mg1", "sim", "msim"};
  // atomic-order (R16): directories where memory_order arguments need an
  // ordering-rationale comment.
  std::vector<std::string> atomic_order_dirs = {"src/parallel/", "src/obs/"};
  // module-layering (R17): the module DAG as ranks; an include may only
  // point at an equal or lower rank. Modules absent from the map (tests,
  // fixtures) are unconstrained.
  std::map<std::string, int> module_ranks = {
      {"core", 0},  {"linalg", 1}, {"jets", 2},     {"dist", 2},  {"transforms", 2},
      {"qbd", 3},   {"ctmc", 3},   {"mg1", 3},      {"analysis", 4}, {"sim", 5},
      {"msim", 5},  {"parallel", 5}, {"obs", 5},    {"durable", 5},
      {"serve", 6}, {"tools", 6},  {"tests", 6}};
  // Modules excluded from the layering check as include *targets*:
  // observability is cross-cutting by design (counters/spans are registered
  // from every layer).
  std::vector<std::string> cross_cutting_modules = {"obs"};
  // journal-hygiene (R18a): request-handler directories that must not do
  // direct file I/O — durability belongs to src/durable/, which owns the
  // CRC framing and the flush-before-publish discipline. A handler writing
  // its own files bypasses both.
  std::vector<std::string> journal_no_direct_io_paths = {"src/serve/"};
  std::vector<std::string> journal_banned_io_calls = {
      "fopen", "freopen", "fwrite", "fprintf", "ofstream", "fstream",
      "open",  "openat",  "creat",  "write",   "pwrite"};
  // journal-hygiene (R18b): directories where a rename() publish requires
  // an fsync somewhere in the same file (flush-before-publish: renaming a
  // file whose bytes were never synced can publish a torn artifact after a
  // power failure).
  std::vector<std::string> journal_publish_paths = {"src/durable/"};
  // policy-registry (R19): contents of the policy catalog (docs/policies.md),
  // loaded by tools/lint/main.cc. Every PolicyKind enumerator's display name
  // (the string policy_name() returns for it) must appear in this text; when
  // it is empty (catalog missing) every policy is flagged as undocumented.
  std::string policy_docs;
  // Catalog file named in policy-registry findings.
  std::string policy_docs_name = "docs/policies.md";
};

class IndexCache;  // tools/lint/index.h

// Run every rule over `files` — the file-local rules R1–R12, then the
// semantic rules R13–R17 on the cross-TU index — apply suppressions, and
// return the surviving findings sorted by (file, line, rule). Cross-file
// rules see the whole set, so pass related .h/.cc files together. When
// `cache` is non-null, unchanged files reuse their cached FileIndex and the
// cache is updated in place (persisting it is the caller's job).
[[nodiscard]] std::vector<Finding> run_rules(std::vector<SourceFile>& files,
                                             const Config& config = {},
                                             IndexCache* cache = nullptr);

// Self-test of the suppression parser used by `csq_cli --lint-selftest`:
// runs a battery of well-formed/malformed suppression comments through
// parse_suppressions and returns a human-readable pass/fail report. `ok` is
// set to false if any expectation fails.
[[nodiscard]] std::string suppression_selftest(bool* ok);

}  // namespace csq::lint
