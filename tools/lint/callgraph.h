// Repo-wide layer of the csq_lint semantic engine: the symbol table over all
// FileIndex records, the `#include` graph, the conservative call graph, and
// the flow-aware rules R13–R17 that run on top of them.
//
// Resolution is name-based with overload sets — there is no type checking.
// The conservatism direction is fixed per rule and documented with each:
// an *unresolved* call (std::, external libraries, function pointers) "may
// do anything", which concretely means it never supplies a property the
// rule wants proven (it cannot poll a RunBudget for R14) and never supplies
// a property that would create a finding out of thin air (it throws no
// taxonomy type for R13, allocates nothing for R15 — taxonomy types and
// tracked allocators only originate in repo code the index can see).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "index.h"
#include "lint.h"

namespace csq::lint {

// A function's position in the repo-wide table.
struct FnRef {
  std::size_t file = 0;  // index into RepoIndex::files
  std::size_t fn = 0;    // index into FileIndex::functions
};

// The cross-TU index: all FileIndex records plus the derived tables the
// rules query. Built once per run by run_semantic_rules (or by hand in
// tests via RepoIndex::build).
class RepoIndex {
 public:
  static RepoIndex build(const std::vector<const FileIndex*>& files,
                         const Config& config);

  [[nodiscard]] const std::vector<const FileIndex*>& files() const { return files_; }
  [[nodiscard]] const FunctionDecl& fn(const FnRef& r) const {
    return files_[r.file]->functions[r.fn];
  }

  // Overload-set resolution for one call site in `caller`. Empty result =
  // unresolved ("may do anything").
  [[nodiscard]] std::vector<FnRef> resolve(const CallRef& call, const FnRef& caller) const;

  // --- Fixpoint results, keyed like fn_refs() -------------------------------

  // All functions, in (file, fn) order; the fixpoint vectors align with it.
  [[nodiscard]] const std::vector<FnRef>& fn_refs() const { return fn_refs_; }
  [[nodiscard]] std::size_t fn_id(const FnRef& r) const;

  // Resolved callee ids for call number `call` of function `id` (aligned
  // with FunctionDecl::calls). Empty = unresolved.
  [[nodiscard]] const std::vector<std::size_t>& resolved(std::size_t id,
                                                         std::size_t call) const {
    return resolved_[id][call];
  }

  // Taxonomy error types that can escape each function (local throws minus
  // enclosing catches, plus resolved callees' escapes minus catches at the
  // call site).
  [[nodiscard]] const std::set<std::string>& escapes(std::size_t id) const {
    return escapes_[id];
  }
  // Transitively polls RunBudget/CancelToken through resolved calls.
  [[nodiscard]] bool polls(std::size_t id) const { return polls_[id]; }
  // Transitively allocates through resolved calls.
  [[nodiscard]] bool allocates(std::size_t id) const { return allocates_[id]; }
  // Is, or transitively reaches, a configured iterative kernel.
  [[nodiscard]] bool reaches_kernel(std::size_t id) const { return reaches_kernel_[id]; }

  // --- Include graph --------------------------------------------------------

  // Resolved include edges: for each file, the indexes of repo files its
  // `#include "..."` directives name. Unresolvable targets are dropped here
  // (R17 falls back to the path's leading segment for module ranking).
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& include_edges() const {
    return include_edges_;
  }
  // Include cycles (SCCs of size > 1, plus self-loops), each sorted by rel.
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& include_cycles() const {
    return include_cycles_;
  }

  // Namespace names seen anywhere in the repo (classifies A::f quals).
  [[nodiscard]] bool is_namespace(const std::string& name) const {
    return namespaces_.count(name) != 0;
  }

 private:
  std::vector<const FileIndex*> files_;
  std::vector<FnRef> fn_refs_;
  std::map<std::string, std::vector<std::size_t>> by_name_;  // name -> fn ids
  std::vector<std::size_t> offsets_;  // file index -> first fn id
  std::set<std::string> namespaces_;
  std::vector<bool> method_;  // finalized is_method per fn id
  std::vector<std::vector<std::vector<std::size_t>>> resolved_;  // fn -> call -> callee ids
  std::vector<std::set<std::string>> escapes_;
  std::vector<bool> polls_;
  std::vector<bool> allocates_;
  std::vector<bool> reaches_kernel_;
  std::vector<std::vector<std::size_t>> include_edges_;
  std::vector<std::vector<std::size_t>> include_cycles_;

  void finalize_methods();
  void resolve_all(const Config& config);
  void run_fixpoints(const Config& config);
  void build_include_graph();
};

// Run R13–R17 over the indexed file set. `indexes[i]` describes `files[i]`;
// `files` supplies the content the doc checks (R13) read. Findings are
// appended unsuppressed — run_rules applies suppressions afterwards.
void run_semantic_rules(const std::vector<SourceFile>& files,
                        const std::vector<const FileIndex*>& indexes,
                        const Config& config, std::vector<Finding>* out);

// Self-test of the indexer and call graph driven from synthetic sources:
// symbol resolution across files, include-graph cycle detection, and the
// conservatism contract on unresolved calls. Mirrors suppression_selftest.
[[nodiscard]] std::string index_selftest(bool* ok);

}  // namespace csq::lint
