#include "sarif.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "serve/json.h"

namespace csq::lint {

namespace {

using csq::serve::json_escape;

[[nodiscard]] std::string q(const std::string& s) { return "\"" + json_escape(s) + "\""; }

}  // namespace

std::string to_json(const std::vector<Finding>& findings) {
  std::ostringstream o;
  o << "{\"tool\":\"csq_lint\",\"count\":" << findings.size() << ",\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) o << ',';
    o << "{\"file\":" << q(f.file) << ",\"rel\":" << q(f.rel) << ",\"line\":" << f.line
      << ",\"rule\":" << q(f.rule) << ",\"message\":" << q(f.message) << '}';
  }
  o << "]}";
  return o.str();
}

std::string to_sarif(const std::vector<Finding>& findings) {
  // Rule index in the driver catalog, for result.ruleIndex.
  std::map<std::string, std::size_t> rule_index;
  for (std::size_t i = 0; i < rules().size(); ++i) rule_index[rules()[i].id] = i;

  std::ostringstream o;
  o << "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
    << "\"version\":\"2.1.0\",\"runs\":[{"
    << "\"tool\":{\"driver\":{\"name\":\"csq_lint\","
    << "\"informationUri\":\"docs/static-analysis.md\",\"version\":\"2.0.0\","
    << "\"rules\":[";
  for (std::size_t i = 0; i < rules().size(); ++i) {
    const RuleInfo& r = rules()[i];
    if (i != 0) o << ',';
    o << "{\"id\":" << q(r.id) << ",\"shortDescription\":{\"text\":" << q(r.summary)
      << "},\"fullDescription\":{\"text\":" << q(r.detail) << "}}";
  }
  o << "]}},\"results\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) o << ',';
    o << "{\"ruleId\":" << q(f.rule);
    const auto it = rule_index.find(f.rule);
    if (it != rule_index.end()) o << ",\"ruleIndex\":" << it->second;
    o << ",\"level\":\"error\",\"message\":{\"text\":" << q(f.message) << "},"
      << "\"locations\":[{\"physicalLocation\":{"
      << "\"artifactLocation\":{\"uri\":" << q(f.rel.empty() ? f.file : f.rel)
      << ",\"uriBaseId\":\"SRCROOT\"},"
      << "\"region\":{\"startLine\":" << std::max(1, f.line) << "}}}]}";
  }
  o << "]}]}";
  return o.str();
}

bool load_baseline(const std::string& text, std::vector<BaselineEntry>* out,
                   std::string* error) {
  out->clear();
  try {
    const serve::JsonValue doc = serve::parse_json(text);
    const serve::JsonValue* entries = doc.find("entries");
    if (entries == nullptr || !entries->is_array()) {
      if (error != nullptr) *error = "baseline must be {\"entries\": [...]}";
      return false;
    }
    for (const serve::JsonValue& e : entries->as_array("entries")) {
      BaselineEntry b;
      const serve::JsonValue* rule = e.find("rule");
      const serve::JsonValue* file = e.find("file");
      const serve::JsonValue* count = e.find("count");
      const serve::JsonValue* reason = e.find("reason");
      if (rule == nullptr || file == nullptr || count == nullptr || !rule->is_string() ||
          !file->is_string() || !count->is_number()) {
        if (error != nullptr)
          *error = "each baseline entry needs string `rule`, string `file`, number `count`";
        return false;
      }
      b.rule = rule->as_string("rule");
      b.file = file->as_string("file");
      b.count = static_cast<int>(count->as_number("count"));
      if (reason != nullptr && reason->is_string()) b.reason = reason->as_string("reason");
      out->push_back(std::move(b));
    }
  } catch (const csq::Error& e) {
    if (error != nullptr) *error = e.status().message;
    return false;
  }
  return true;
}

std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    const std::vector<BaselineEntry>& entries,
                                    const std::string& baseline_name) {
  std::vector<Finding> meta;
  std::vector<bool> drop(findings.size(), false);
  for (const BaselineEntry& e : entries) {
    if (e.reason.empty()) {
      meta.push_back({baseline_name, 1, "baseline",
                      "entry {" + e.rule + ", " + e.file +
                          "} has no reason — every grandfathered finding needs its "
                          "reviewable justification"});
      continue;
    }
    std::vector<std::size_t> matched;
    for (std::size_t i = 0; i < findings.size(); ++i)
      if (!drop[i] && findings[i].rule == e.rule && findings[i].rel == e.file)
        matched.push_back(i);
    const int found = static_cast<int>(matched.size());
    if (found == e.count) {
      for (std::size_t i : matched) drop[i] = true;
    } else if (found < e.count) {
      // The tree improved (or the rule changed): the entry over-claims.
      // Still suppress what it covers, but demand a refresh.
      for (std::size_t i : matched) drop[i] = true;
      meta.push_back({baseline_name, 1, "baseline",
                      "stale entry {" + e.rule + ", " + e.file + "}: expected " +
                          std::to_string(e.count) + " finding(s), the tree has " +
                          std::to_string(found) +
                          " — lower or remove the entry (exact-count matching)"});
    } else {
      // Regression past the grandfathered count: nothing is suppressed, the
      // whole group surfaces, and this meta finding explains why.
      meta.push_back({baseline_name, 1, "baseline",
                      "entry {" + e.rule + ", " + e.file + "} allows " +
                          std::to_string(e.count) + " finding(s) but the tree has " +
                          std::to_string(found) +
                          " — fix the regression or re-review the baseline"});
    }
  }
  std::vector<Finding> out;
  for (std::size_t i = 0; i < findings.size(); ++i)
    if (!drop[i]) out.push_back(std::move(findings[i]));
  for (Finding& m : meta) {
    m.rel = m.file;
    out.push_back(std::move(m));
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

}  // namespace csq::lint
