#!/usr/bin/env sh
# Emit a normalized JSON perf baseline from the Google Benchmark suite.
#
# Runs bench/perf_solver with --benchmark_format=json, then strips volatile
# fields (dates, load average, library build metadata, per-run statistics)
# so committed BENCH_*.json snapshots diff cleanly across runs. Host context
# that DOES matter for interpreting numbers (cpu count, mhz, cache sizes) is
# kept under "context".
#
# usage: tools/bench_json.sh [build-dir] [out.json] [extra benchmark args...]
#        (defaults: build, stdout)
# examples:
#   tools/bench_json.sh build BENCH_pr2.json
#   tools/bench_json.sh build - --benchmark_filter='BM_Sweep.*'
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
out=${2:--}
[ $# -ge 1 ] && shift
[ $# -ge 1 ] && shift

bench_bin="$build_dir/bench/perf_solver"
if [ ! -x "$bench_bin" ]; then
  echo "bench_json: $bench_bin not built; run: cmake --build $build_dir --target perf_solver" >&2
  exit 1
fi

raw=$(mktemp)
obs=$(mktemp)
trap 'rm -f "$raw" "$obs"' EXIT
"$bench_bin" --benchmark_format=json --benchmark_out_format=json "$@" >"$raw"

# Obs counter snapshot for a reference CS-CQ analysis (deterministic, so it
# diffs cleanly): solver stage iteration counts ride along with the timings
# and flag algorithmic drift that wall-clock noise would hide. Empty when
# the CLI is not built or obs is compiled out.
cli_bin="$build_dir/tools/csq_cli"
if [ -x "$cli_bin" ]; then
  "$cli_bin" analyze --policy cscq --rho-s 1.1 --rho-l 0.5 --metrics >"$obs" 2>/dev/null \
    || : >"$obs"
else
  : >"$obs"
fi

normalize() {
  python3 - "$raw" "$obs" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

obs_metrics = {}
try:
    with open(sys.argv[2]) as f:
        text = f.read()
    # --metrics prints the JSON object after a human-readable report; the
    # object starts at the first '{'.
    brace = text.find("{")
    if brace >= 0:
        obs_metrics = json.loads(text[brace:])
except (OSError, ValueError):
    obs_metrics = {}

ctx = doc.get("context", {})
keep_ctx = ("num_cpus", "mhz_per_cpu", "cpu_scaling_enabled", "caches",
            "library_build_type")
context = {k: ctx[k] for k in keep_ctx if k in ctx}

# Host CPU identity: the committed snapshots are only comparable on the
# same silicon, so record what ran them (benchmark's own context lacks the
# model string). Best-effort — absent on non-Linux hosts.
try:
    import os
    context["host_cpu_count"] = os.cpu_count()
    with open("/proc/cpuinfo") as f:
        for line in f:
            if line.lower().startswith("model name"):
                context["host_cpu_model"] = line.split(":", 1)[1].strip()
                break
except OSError:
    pass

keep_bench = ("name", "run_type", "iterations", "real_time", "cpu_time",
              "time_unit")
benchmarks = []
for b in doc.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    row = {k: b[k] for k in keep_bench if k in b}
    # Counters (e.g. allocs_per_iter) ride at the top level of each entry.
    std = set(keep_bench) | {
        "family_index", "per_family_instance_index", "repetitions",
        "repetition_index", "threads", "aggregate_name", "label",
        "error_occurred", "error_message",
    }
    for k, v in b.items():
        if k not in std and isinstance(v, (int, float)):
            row[k] = v
    benchmarks.append(row)

json.dump({"context": context, "benchmarks": benchmarks,
           "obs_metrics": obs_metrics},
          sys.stdout, indent=2, sort_keys=True)
sys.stdout.write("\n")
EOF
}

if [ "$out" = "-" ]; then
  normalize
else
  normalize >"$out"
  echo "bench_json: wrote $out"
fi
