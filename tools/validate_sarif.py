#!/usr/bin/env python3
"""Structural validator for csq_lint --format=sarif output.

Checks the SARIF 2.1.0 schema surface the lint pipeline relies on, using
only the stdlib (the container has no jsonschema package). This is the
subset a SARIF 2.1.0 schema validator would enforce for the document shape
csq_lint emits: required top-level keys, driver/rule catalog invariants,
and per-result location structure.

Usage: validate_sarif.py FILE.sarif
Exit 0 when the document validates, 1 with a diagnostic otherwise.
"""
import json
import sys


class Bad(Exception):
    pass


def need(obj, key, typ, where):
    if not isinstance(obj, dict) or key not in obj:
        raise Bad(f"{where}: missing required property `{key}`")
    val = obj[key]
    if not isinstance(val, typ):
        raise Bad(f"{where}.{key}: expected {typ.__name__}, got {type(val).__name__}")
    return val


def check_rule(rule, where):
    rid = need(rule, "id", str, where)
    if not rid:
        raise Bad(f"{where}.id: empty rule id")
    short = need(rule, "shortDescription", dict, where)
    need(short, "text", str, f"{where}.shortDescription")
    full = need(rule, "fullDescription", dict, where)
    need(full, "text", str, f"{where}.fullDescription")
    return rid


def check_result(result, rule_ids, where):
    rid = need(result, "ruleId", str, where)
    if rid not in rule_ids and rid != "baseline":
        # Every emitted ruleId must exist in the driver catalog; "baseline"
        # meta findings are part of the catalog too, so this is strict.
        raise Bad(f"{where}.ruleId: `{rid}` not in the driver rule catalog")
    if "ruleIndex" in result:
        idx = result["ruleIndex"]
        if not isinstance(idx, int) or idx < 0 or idx >= len(rule_ids):
            raise Bad(f"{where}.ruleIndex: {idx!r} out of range")
        if sorted(rule_ids)[0:0] == [] and list(rule_ids)[idx] != rid:
            raise Bad(f"{where}.ruleIndex: points at `{list(rule_ids)[idx]}`, not `{rid}`")
    level = need(result, "level", str, where)
    if level not in ("none", "note", "warning", "error"):
        raise Bad(f"{where}.level: `{level}` is not a SARIF level")
    msg = need(result, "message", dict, where)
    need(msg, "text", str, f"{where}.message")
    locations = need(result, "locations", list, where)
    if not locations:
        raise Bad(f"{where}.locations: empty")
    for j, loc in enumerate(locations):
        lw = f"{where}.locations[{j}]"
        phys = need(loc, "physicalLocation", dict, lw)
        art = need(phys, "artifactLocation", dict, f"{lw}.physicalLocation")
        uri = need(art, "uri", str, f"{lw}.physicalLocation.artifactLocation")
        if not uri:
            raise Bad(f"{lw}: empty artifact uri")
        if uri.startswith("/") or ":" in uri.split("/")[0]:
            # uriBaseId-relative uris must not be absolute.
            if art.get("uriBaseId"):
                raise Bad(f"{lw}: absolute uri `{uri}` with uriBaseId set")
        region = need(phys, "region", dict, f"{lw}.physicalLocation")
        line = need(region, "startLine", int, f"{lw}.physicalLocation.region")
        if line < 1:
            raise Bad(f"{lw}: startLine {line} < 1 (SARIF lines are 1-based)")


def validate(doc):
    schema = need(doc, "$schema", str, "$")
    if "sarif-2.1.0" not in schema:
        raise Bad(f"$.$schema: `{schema}` does not reference the SARIF 2.1.0 schema")
    version = need(doc, "version", str, "$")
    if version != "2.1.0":
        raise Bad(f"$.version: `{version}` != 2.1.0")
    runs = need(doc, "runs", list, "$")
    if len(runs) != 1:
        raise Bad(f"$.runs: expected exactly 1 run, got {len(runs)}")
    run = runs[0]
    tool = need(run, "tool", dict, "$.runs[0]")
    driver = need(tool, "driver", dict, "$.runs[0].tool")
    name = need(driver, "name", str, "$.runs[0].tool.driver")
    if name != "csq_lint":
        raise Bad(f"driver.name: `{name}` != csq_lint")
    rules = need(driver, "rules", list, "$.runs[0].tool.driver")
    if not rules:
        raise Bad("driver.rules: empty rule catalog")
    rule_ids = []
    for i, rule in enumerate(rules):
        rule_ids.append(check_rule(rule, f"driver.rules[{i}]"))
    if len(set(rule_ids)) != len(rule_ids):
        raise Bad("driver.rules: duplicate rule ids")
    results = need(run, "results", list, "$.runs[0]")
    for i, result in enumerate(results):
        check_result(result, rule_ids, f"results[{i}]")
    return len(rules), len(results)


def main(argv):
    if len(argv) != 2:
        print("usage: validate_sarif.py FILE.sarif", file=sys.stderr)
        return 1
    try:
        with open(argv[1], "rb") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as e:
        print(f"validate_sarif: {argv[1]}: {e}", file=sys.stderr)
        return 1
    try:
        n_rules, n_results = validate(doc)
    except Bad as e:
        print(f"validate_sarif: {argv[1]}: {e}", file=sys.stderr)
        return 1
    print(f"validate_sarif: OK ({n_rules} rules, {n_results} results)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
