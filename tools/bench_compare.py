#!/usr/bin/env python3
"""Compare a fresh bench_json.sh run against a committed BENCH_*.json baseline.

The committed snapshots (BENCH_pr2.json, BENCH_pr5.json, ...) are the repo's
perf ledger; this tool is the regression gate over it. It matches benchmarks
by name, prints a ratio table with each guard's own threshold, and exits
nonzero when a *guarded* benchmark regresses beyond its threshold.

Three benchmarks are guarded by default, each with its own budget:

  BM_AnalyzeCscq                              +10%  the per-point analysis
        cost the whole perf story hangs on (pinned < 100us budget)
  BM_AnalyzeBatch30                           +15%  the batched-solve path;
        shares LU work across points, so noise is higher than single-point
  BM_SweepPanel30Points/threads:1/real_time   +15%  end-to-end sweep cost;
        only the single-thread variant is stable enough to gate on a
        shared 1-CPU CI host

One benchmark is capped absolutely rather than relatively:

  BM_JournalAppend                            5000ns  one write-ahead
        journal request+response append pair; an absolute cap because the
        benchmark postdates the newest committed snapshot, so there is no
        baseline row to take a ratio against. The budget is the durability
        overhead promise in docs/serving.md §9 (< 5 us per request).

Everything else is reported but advisory.

usage: tools/bench_compare.py NEW.json [BASELINE.json]
       tools/bench_compare.py NEW.json --guard BM_AnalyzeCscq:0.08
       tools/bench_compare.py NEW.json --abs-guard BM_JournalAppend:5000

--guard NAME[:THRESH] is repeatable and replaces the default guard set;
THRESH is the allowed fractional regression (0.08 = +8%). Without :THRESH
the --threshold fallback applies. --abs-guard NAME:NANOS is repeatable and
replaces the default absolute-cap set; the named benchmark's cpu_time in
the NEW run must stay under NANOS (no baseline needed). With no BASELINE
argument the newest committed BENCH_*.json (highest PR number) in the repo
root is used.
Exit codes: 0 ok, 1 guarded regression, 2 usage/missing-file errors.
"""

import argparse
import json
import pathlib
import re
import sys

DEFAULT_GUARDS = {
    "BM_AnalyzeCscq": 0.10,
    "BM_AnalyzeBatch30": 0.15,
    "BM_SweepPanel30Points/threads:1/real_time": 0.15,
}

# Absolute caps in nanoseconds, enforced against the new run alone — for
# benchmarks with no row in the committed baseline to ratio against.
DEFAULT_ABS_GUARDS = {
    "BM_JournalAppend": 5000.0,
}

# google-benchmark time_unit -> nanoseconds.
UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    rows = {}
    for b in doc.get("benchmarks", []):
        name = b.get("name")
        if name and "cpu_time" in b:
            rows[name] = b
    if not rows:
        sys.exit(f"bench_compare: {path} holds no benchmark rows")
    return rows


def latest_committed_baseline(root):
    best, best_key = None, None
    for p in root.glob("BENCH_*.json"):
        m = re.search(r"(\d+)", p.stem)
        key = int(m.group(1)) if m else -1
        if best_key is None or key > best_key:
            best, best_key = p, key
    return best


def parse_guard(spec, fallback):
    """'NAME' or 'NAME:0.08' -> (name, threshold)."""
    name, sep, thresh = spec.rpartition(":")
    if sep and re.fullmatch(r"[0-9.]+", thresh):
        try:
            return name, float(thresh)
        except ValueError:
            sys.exit(f"bench_compare: bad threshold in --guard {spec!r}")
    return spec, fallback


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("new", help="fresh bench_json.sh output")
    ap.add_argument("baseline", nargs="?", default=None,
                    help="committed snapshot (default: newest BENCH_*.json)")
    ap.add_argument("--guard", action="append", default=None,
                    metavar="NAME[:THRESH]",
                    help="benchmark that must not regress, with optional "
                         "per-guard threshold (repeatable; replaces the "
                         "default guard set)")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="fallback fractional regression for guards given "
                         "without :THRESH (default 0.10 = +10%%)")
    ap.add_argument("--abs-guard", action="append", default=None,
                    metavar="NAME:NANOS",
                    help="benchmark whose cpu_time in the new run must stay "
                         "under an absolute nanosecond cap (repeatable; "
                         "replaces the default absolute-cap set)")
    args = ap.parse_args()

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    baseline_path = args.baseline or latest_committed_baseline(repo_root)
    if baseline_path is None:
        sys.exit("bench_compare: no committed BENCH_*.json baseline found")
    if args.guard is not None:
        guards = dict(parse_guard(g, args.threshold) for g in args.guard)
    else:
        guards = dict(DEFAULT_GUARDS)
    if args.abs_guard is not None:
        abs_guards = {}
        for spec in args.abs_guard:
            name, sep, cap = spec.rpartition(":")
            if not sep:
                sys.exit(f"bench_compare: --abs-guard {spec!r} needs NAME:NANOS")
            try:
                abs_guards[name] = float(cap)
            except ValueError:
                sys.exit(f"bench_compare: bad cap in --abs-guard {spec!r}")
    else:
        abs_guards = dict(DEFAULT_ABS_GUARDS)

    new = load(args.new)
    old = load(baseline_path)

    print(f"bench_compare: {args.new} vs {baseline_path} "
          f"({len(guards)} guarded)")
    header = f"{'benchmark':44s} {'old':>12s} {'new':>12s} {'ratio':>7s} {'budget':>7s}"
    print(header)
    print("-" * len(header))

    failures = []
    for name in sorted(set(new) | set(old)):
        if name not in new or name not in old:
            where = "baseline" if name not in new else "new run"
            print(f"{name:44s} {'(only in ' + where + ')':>33s}")
            continue
        o, n = old[name]["cpu_time"], new[name]["cpu_time"]
        unit = new[name].get("time_unit", "ns")
        ratio = n / o if o > 0 else float("inf")
        if name in guards:
            thresh = guards[name]
            budget = f"+{thresh:.0%}"
            mark = ""
            if ratio > 1.0 + thresh:
                mark = " FAIL"
                failures.append((name, o, n, ratio, unit, thresh))
        else:
            budget = "-"
            mark = ""
        print(f"{name:44s} {o:10.1f}{unit:>2s} {n:10.1f}{unit:>2s} "
              f"{ratio:6.2f}x {budget:>7s}{mark}")

    abs_failures = []
    for name, cap_ns in sorted(abs_guards.items()):
        if name not in new:
            print(f"bench_compare: absolute-capped benchmark {name} missing "
                  f"from new run")
            abs_failures.append((name, None, cap_ns))
            continue
        unit = new[name].get("time_unit", "ns")
        got_ns = new[name]["cpu_time"] * UNIT_NS.get(unit, 1.0)
        verdict = "FAIL" if got_ns > cap_ns else "ok"
        print(f"{name:44s} {'-':>12s} {got_ns:10.1f}ns "
              f"{'cap':>7s} {cap_ns:5.0f}ns {verdict}")
        if got_ns > cap_ns:
            abs_failures.append((name, got_ns, cap_ns))

    missing_guards = [g for g in guards if g not in new or g not in old]
    for g in missing_guards:
        print(f"bench_compare: guarded benchmark {g} missing from "
              f"{'new run' if g not in new else 'baseline'}")

    if failures or missing_guards or abs_failures:
        for name, o, n, ratio, unit, thresh in failures:
            print(f"bench_compare: FAIL {name} regressed "
                  f"{o:.1f}{unit} -> {n:.1f}{unit} ({ratio - 1.0:+.1%}, "
                  f"allowed +{thresh:.0%})")
        for name, got_ns, cap_ns in abs_failures:
            if got_ns is None:
                print(f"bench_compare: FAIL {name} absent from new run "
                      f"(absolute cap {cap_ns:.0f}ns unverifiable)")
            else:
                print(f"bench_compare: FAIL {name} at {got_ns:.1f}ns, "
                      f"absolute cap {cap_ns:.0f}ns")
        return 1
    print("bench_compare: OK (no guarded regression)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
