# Empty dependencies file for fig6_vs_rhol.
# This may be replaced when dependencies are built.
