file(REMOVE_RECURSE
  "CMakeFiles/fig6_vs_rhol.dir/fig6_vs_rhol.cc.o"
  "CMakeFiles/fig6_vs_rhol.dir/fig6_vs_rhol.cc.o.d"
  "fig6_vs_rhol"
  "fig6_vs_rhol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_vs_rhol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
