file(REMOVE_RECURSE
  "CMakeFiles/extension_ph_shorts.dir/extension_ph_shorts.cc.o"
  "CMakeFiles/extension_ph_shorts.dir/extension_ph_shorts.cc.o.d"
  "extension_ph_shorts"
  "extension_ph_shorts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_ph_shorts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
