# Empty compiler generated dependencies file for extension_ph_shorts.
# This may be replaced when dependencies are built.
