file(REMOVE_RECURSE
  "CMakeFiles/fig5_coxian.dir/fig5_coxian.cc.o"
  "CMakeFiles/fig5_coxian.dir/fig5_coxian.cc.o.d"
  "fig5_coxian"
  "fig5_coxian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_coxian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
