# Empty dependencies file for fig5_coxian.
# This may be replaced when dependencies are built.
