# Empty compiler generated dependencies file for extension_tags.
# This may be replaced when dependencies are built.
