# Empty dependencies file for extension_tags.
# This may be replaced when dependencies are built.
