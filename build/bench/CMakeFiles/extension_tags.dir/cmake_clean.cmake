file(REMOVE_RECURSE
  "CMakeFiles/extension_tags.dir/extension_tags.cc.o"
  "CMakeFiles/extension_tags.dir/extension_tags.cc.o.d"
  "extension_tags"
  "extension_tags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_tags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
