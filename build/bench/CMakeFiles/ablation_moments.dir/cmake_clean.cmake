file(REMOVE_RECURSE
  "CMakeFiles/ablation_moments.dir/ablation_moments.cc.o"
  "CMakeFiles/ablation_moments.dir/ablation_moments.cc.o.d"
  "ablation_moments"
  "ablation_moments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_moments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
