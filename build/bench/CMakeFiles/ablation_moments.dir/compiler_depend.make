# Empty compiler generated dependencies file for ablation_moments.
# This may be replaced when dependencies are built.
