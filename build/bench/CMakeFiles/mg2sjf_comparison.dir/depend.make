# Empty dependencies file for mg2sjf_comparison.
# This may be replaced when dependencies are built.
