file(REMOVE_RECURSE
  "CMakeFiles/mg2sjf_comparison.dir/mg2sjf_comparison.cc.o"
  "CMakeFiles/mg2sjf_comparison.dir/mg2sjf_comparison.cc.o.d"
  "mg2sjf_comparison"
  "mg2sjf_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg2sjf_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
