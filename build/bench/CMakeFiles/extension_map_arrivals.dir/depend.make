# Empty dependencies file for extension_map_arrivals.
# This may be replaced when dependencies are built.
