file(REMOVE_RECURSE
  "CMakeFiles/extension_map_arrivals.dir/extension_map_arrivals.cc.o"
  "CMakeFiles/extension_map_arrivals.dir/extension_map_arrivals.cc.o.d"
  "extension_map_arrivals"
  "extension_map_arrivals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_map_arrivals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
