file(REMOVE_RECURSE
  "CMakeFiles/validation_sim.dir/validation_sim.cc.o"
  "CMakeFiles/validation_sim.dir/validation_sim.cc.o.d"
  "validation_sim"
  "validation_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
