# Empty compiler generated dependencies file for validation_sim.
# This may be replaced when dependencies are built.
