# Empty compiler generated dependencies file for validation_limits.
# This may be replaced when dependencies are built.
