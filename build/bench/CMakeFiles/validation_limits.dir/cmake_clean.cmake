file(REMOVE_RECURSE
  "CMakeFiles/validation_limits.dir/validation_limits.cc.o"
  "CMakeFiles/validation_limits.dir/validation_limits.cc.o.d"
  "validation_limits"
  "validation_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
