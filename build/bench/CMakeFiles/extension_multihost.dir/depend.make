# Empty dependencies file for extension_multihost.
# This may be replaced when dependencies are built.
