file(REMOVE_RECURSE
  "CMakeFiles/extension_multihost.dir/extension_multihost.cc.o"
  "CMakeFiles/extension_multihost.dir/extension_multihost.cc.o.d"
  "extension_multihost"
  "extension_multihost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_multihost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
