file(REMOVE_RECURSE
  "CMakeFiles/fig4_exponential.dir/fig4_exponential.cc.o"
  "CMakeFiles/fig4_exponential.dir/fig4_exponential.cc.o.d"
  "fig4_exponential"
  "fig4_exponential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_exponential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
