# Empty compiler generated dependencies file for fig4_exponential.
# This may be replaced when dependencies are built.
