file(REMOVE_RECURSE
  "CMakeFiles/fig3_stability.dir/fig3_stability.cc.o"
  "CMakeFiles/fig3_stability.dir/fig3_stability.cc.o.d"
  "fig3_stability"
  "fig3_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
