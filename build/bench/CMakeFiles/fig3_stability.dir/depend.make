# Empty dependencies file for fig3_stability.
# This may be replaced when dependencies are built.
