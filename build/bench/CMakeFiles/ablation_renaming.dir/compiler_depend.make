# Empty compiler generated dependencies file for ablation_renaming.
# This may be replaced when dependencies are built.
