file(REMOVE_RECURSE
  "CMakeFiles/ablation_renaming.dir/ablation_renaming.cc.o"
  "CMakeFiles/ablation_renaming.dir/ablation_renaming.cc.o.d"
  "ablation_renaming"
  "ablation_renaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_renaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
