# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_stability "/root/repo/build/tools/csq_cli" "stability" "--points" "5")
set_tests_properties(cli_stability PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze "/root/repo/build/tools/csq_cli" "analyze" "--policy" "cscq" "--rho-s" "1.1" "--rho-l" "0.5")
set_tests_properties(cli_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sweep_csv "/root/repo/build/tools/csq_cli" "sweep" "--x" "rho_s" "--from" "0.2" "--to" "1.0" "--points" "3" "--csv")
set_tests_properties(cli_sweep_csv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_policy "/root/repo/build/tools/csq_cli" "analyze" "--policy" "nope")
set_tests_properties(cli_bad_policy PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
