file(REMOVE_RECURSE
  "CMakeFiles/csq_cli.dir/csq_cli.cc.o"
  "CMakeFiles/csq_cli.dir/csq_cli.cc.o.d"
  "csq_cli"
  "csq_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csq_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
