# Empty compiler generated dependencies file for csq_cli.
# This may be replaced when dependencies are built.
