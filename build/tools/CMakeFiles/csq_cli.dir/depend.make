# Empty dependencies file for csq_cli.
# This may be replaced when dependencies are built.
