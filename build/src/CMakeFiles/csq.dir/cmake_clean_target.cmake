file(REMOVE_RECURSE
  "libcsq.a"
)
