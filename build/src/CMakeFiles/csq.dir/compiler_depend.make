# Empty compiler generated dependencies file for csq.
# This may be replaced when dependencies are built.
