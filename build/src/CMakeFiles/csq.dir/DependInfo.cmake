
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cscq.cc" "src/CMakeFiles/csq.dir/analysis/cscq.cc.o" "gcc" "src/CMakeFiles/csq.dir/analysis/cscq.cc.o.d"
  "/root/repo/src/analysis/cscq_map.cc" "src/CMakeFiles/csq.dir/analysis/cscq_map.cc.o" "gcc" "src/CMakeFiles/csq.dir/analysis/cscq_map.cc.o.d"
  "/root/repo/src/analysis/cscq_ph.cc" "src/CMakeFiles/csq.dir/analysis/cscq_ph.cc.o" "gcc" "src/CMakeFiles/csq.dir/analysis/cscq_ph.cc.o.d"
  "/root/repo/src/analysis/csid.cc" "src/CMakeFiles/csq.dir/analysis/csid.cc.o" "gcc" "src/CMakeFiles/csq.dir/analysis/csid.cc.o.d"
  "/root/repo/src/analysis/dedicated.cc" "src/CMakeFiles/csq.dir/analysis/dedicated.cc.o" "gcc" "src/CMakeFiles/csq.dir/analysis/dedicated.cc.o.d"
  "/root/repo/src/analysis/stability.cc" "src/CMakeFiles/csq.dir/analysis/stability.cc.o" "gcc" "src/CMakeFiles/csq.dir/analysis/stability.cc.o.d"
  "/root/repo/src/analysis/truncated_cscq.cc" "src/CMakeFiles/csq.dir/analysis/truncated_cscq.cc.o" "gcc" "src/CMakeFiles/csq.dir/analysis/truncated_cscq.cc.o.d"
  "/root/repo/src/core/config.cc" "src/CMakeFiles/csq.dir/core/config.cc.o" "gcc" "src/CMakeFiles/csq.dir/core/config.cc.o.d"
  "/root/repo/src/core/solver.cc" "src/CMakeFiles/csq.dir/core/solver.cc.o" "gcc" "src/CMakeFiles/csq.dir/core/solver.cc.o.d"
  "/root/repo/src/core/sweep.cc" "src/CMakeFiles/csq.dir/core/sweep.cc.o" "gcc" "src/CMakeFiles/csq.dir/core/sweep.cc.o.d"
  "/root/repo/src/core/table.cc" "src/CMakeFiles/csq.dir/core/table.cc.o" "gcc" "src/CMakeFiles/csq.dir/core/table.cc.o.d"
  "/root/repo/src/ctmc/sparse.cc" "src/CMakeFiles/csq.dir/ctmc/sparse.cc.o" "gcc" "src/CMakeFiles/csq.dir/ctmc/sparse.cc.o.d"
  "/root/repo/src/ctmc/stationary.cc" "src/CMakeFiles/csq.dir/ctmc/stationary.cc.o" "gcc" "src/CMakeFiles/csq.dir/ctmc/stationary.cc.o.d"
  "/root/repo/src/dist/distribution.cc" "src/CMakeFiles/csq.dir/dist/distribution.cc.o" "gcc" "src/CMakeFiles/csq.dir/dist/distribution.cc.o.d"
  "/root/repo/src/dist/map_process.cc" "src/CMakeFiles/csq.dir/dist/map_process.cc.o" "gcc" "src/CMakeFiles/csq.dir/dist/map_process.cc.o.d"
  "/root/repo/src/dist/moment_match.cc" "src/CMakeFiles/csq.dir/dist/moment_match.cc.o" "gcc" "src/CMakeFiles/csq.dir/dist/moment_match.cc.o.d"
  "/root/repo/src/dist/phase_type.cc" "src/CMakeFiles/csq.dir/dist/phase_type.cc.o" "gcc" "src/CMakeFiles/csq.dir/dist/phase_type.cc.o.d"
  "/root/repo/src/linalg/lu.cc" "src/CMakeFiles/csq.dir/linalg/lu.cc.o" "gcc" "src/CMakeFiles/csq.dir/linalg/lu.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/CMakeFiles/csq.dir/linalg/matrix.cc.o" "gcc" "src/CMakeFiles/csq.dir/linalg/matrix.cc.o.d"
  "/root/repo/src/mg1/mg1.cc" "src/CMakeFiles/csq.dir/mg1/mg1.cc.o" "gcc" "src/CMakeFiles/csq.dir/mg1/mg1.cc.o.d"
  "/root/repo/src/mg1/mmc.cc" "src/CMakeFiles/csq.dir/mg1/mmc.cc.o" "gcc" "src/CMakeFiles/csq.dir/mg1/mmc.cc.o.d"
  "/root/repo/src/msim/multi_sim.cc" "src/CMakeFiles/csq.dir/msim/multi_sim.cc.o" "gcc" "src/CMakeFiles/csq.dir/msim/multi_sim.cc.o.d"
  "/root/repo/src/qbd/qbd.cc" "src/CMakeFiles/csq.dir/qbd/qbd.cc.o" "gcc" "src/CMakeFiles/csq.dir/qbd/qbd.cc.o.d"
  "/root/repo/src/sim/policies.cc" "src/CMakeFiles/csq.dir/sim/policies.cc.o" "gcc" "src/CMakeFiles/csq.dir/sim/policies.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/csq.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/csq.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/csq.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/csq.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/csq.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/csq.dir/sim/stats.cc.o.d"
  "/root/repo/src/transforms/busy_period.cc" "src/CMakeFiles/csq.dir/transforms/busy_period.cc.o" "gcc" "src/CMakeFiles/csq.dir/transforms/busy_period.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
