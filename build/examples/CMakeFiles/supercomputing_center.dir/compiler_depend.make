# Empty compiler generated dependencies file for supercomputing_center.
# This may be replaced when dependencies are built.
