file(REMOVE_RECURSE
  "CMakeFiles/supercomputing_center.dir/supercomputing_center.cpp.o"
  "CMakeFiles/supercomputing_center.dir/supercomputing_center.cpp.o.d"
  "supercomputing_center"
  "supercomputing_center.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supercomputing_center.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
