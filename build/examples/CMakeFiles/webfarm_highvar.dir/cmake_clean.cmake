file(REMOVE_RECURSE
  "CMakeFiles/webfarm_highvar.dir/webfarm_highvar.cpp.o"
  "CMakeFiles/webfarm_highvar.dir/webfarm_highvar.cpp.o.d"
  "webfarm_highvar"
  "webfarm_highvar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webfarm_highvar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
