# Empty dependencies file for webfarm_highvar.
# This may be replaced when dependencies are built.
