
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/csq_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/csq_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_cscq.cc" "tests/CMakeFiles/csq_tests.dir/test_cscq.cc.o" "gcc" "tests/CMakeFiles/csq_tests.dir/test_cscq.cc.o.d"
  "/root/repo/tests/test_cscq_map.cc" "tests/CMakeFiles/csq_tests.dir/test_cscq_map.cc.o" "gcc" "tests/CMakeFiles/csq_tests.dir/test_cscq_map.cc.o.d"
  "/root/repo/tests/test_cscq_ph.cc" "tests/CMakeFiles/csq_tests.dir/test_cscq_ph.cc.o" "gcc" "tests/CMakeFiles/csq_tests.dir/test_cscq_ph.cc.o.d"
  "/root/repo/tests/test_csid.cc" "tests/CMakeFiles/csq_tests.dir/test_csid.cc.o" "gcc" "tests/CMakeFiles/csq_tests.dir/test_csid.cc.o.d"
  "/root/repo/tests/test_ctmc.cc" "tests/CMakeFiles/csq_tests.dir/test_ctmc.cc.o" "gcc" "tests/CMakeFiles/csq_tests.dir/test_ctmc.cc.o.d"
  "/root/repo/tests/test_dist.cc" "tests/CMakeFiles/csq_tests.dir/test_dist.cc.o" "gcc" "tests/CMakeFiles/csq_tests.dir/test_dist.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/csq_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/csq_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_jets.cc" "tests/CMakeFiles/csq_tests.dir/test_jets.cc.o" "gcc" "tests/CMakeFiles/csq_tests.dir/test_jets.cc.o.d"
  "/root/repo/tests/test_linalg.cc" "tests/CMakeFiles/csq_tests.dir/test_linalg.cc.o" "gcc" "tests/CMakeFiles/csq_tests.dir/test_linalg.cc.o.d"
  "/root/repo/tests/test_mg1.cc" "tests/CMakeFiles/csq_tests.dir/test_mg1.cc.o" "gcc" "tests/CMakeFiles/csq_tests.dir/test_mg1.cc.o.d"
  "/root/repo/tests/test_moment_match.cc" "tests/CMakeFiles/csq_tests.dir/test_moment_match.cc.o" "gcc" "tests/CMakeFiles/csq_tests.dir/test_moment_match.cc.o.d"
  "/root/repo/tests/test_multi_sim.cc" "tests/CMakeFiles/csq_tests.dir/test_multi_sim.cc.o" "gcc" "tests/CMakeFiles/csq_tests.dir/test_multi_sim.cc.o.d"
  "/root/repo/tests/test_qbd.cc" "tests/CMakeFiles/csq_tests.dir/test_qbd.cc.o" "gcc" "tests/CMakeFiles/csq_tests.dir/test_qbd.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/csq_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/csq_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_sim_policies.cc" "tests/CMakeFiles/csq_tests.dir/test_sim_policies.cc.o" "gcc" "tests/CMakeFiles/csq_tests.dir/test_sim_policies.cc.o.d"
  "/root/repo/tests/test_stability.cc" "tests/CMakeFiles/csq_tests.dir/test_stability.cc.o" "gcc" "tests/CMakeFiles/csq_tests.dir/test_stability.cc.o.d"
  "/root/repo/tests/test_tags.cc" "tests/CMakeFiles/csq_tests.dir/test_tags.cc.o" "gcc" "tests/CMakeFiles/csq_tests.dir/test_tags.cc.o.d"
  "/root/repo/tests/test_transforms.cc" "tests/CMakeFiles/csq_tests.dir/test_transforms.cc.o" "gcc" "tests/CMakeFiles/csq_tests.dir/test_transforms.cc.o.d"
  "/root/repo/tests/test_truncated.cc" "tests/CMakeFiles/csq_tests.dir/test_truncated.cc.o" "gcc" "tests/CMakeFiles/csq_tests.dir/test_truncated.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/csq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
