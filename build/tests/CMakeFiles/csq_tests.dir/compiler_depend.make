# Empty compiler generated dependencies file for csq_tests.
# This may be replaced when dependencies are built.
